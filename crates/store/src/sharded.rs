//! [`ShardedIndex`] — the lazy, shard-parallel runtime view of a store
//! directory, plus [`write_store`], the build-side partitioner.
//!
//! Opening a store reads **only** the manifest: cold-open cost is
//! `O(manifest)`, not `O(index)`, which is what makes server restarts on
//! huge graphs near-instant. Shard files are faulted in on first touch
//! through per-shard `OnceLock` slots (success *and* failure are cached —
//! a corrupt shard fails the same way every time instead of re-reading
//! the broken file), and whole-index operations fault the missing shards
//! in **in parallel**.
//!
//! Every query result is byte-identical to the monolithic [`RrIndex`]
//! the store was written from. That is not an accident of small inputs —
//! shards hold *contiguous* global set ranges, so walking shards in
//! order visits sets in exactly the global order, which preserves both
//! the float-accumulation order of marginal gains/coverage and the
//! low-set-id posting order the monolithic code relies on. The
//! equivalence (including greedy tie-breaks) is proptested across shard
//! counts in `tests/store_properties.rs`.

use crate::format::{
    shard_from_bytes, shard_path, shard_to_bytes, Manifest, ShardInfo, ShardParts, MANIFEST_FILE,
};
use cwelmax_engine::codec::crc32;
use cwelmax_engine::conditioned::validated_sp_nodes;
use cwelmax_engine::{
    ConditionedView, EngineBuilder, EngineError, IndexBackend, IndexMeta, RrIndex, StorageStats,
};
use cwelmax_graph::NodeId;
use cwelmax_obs::{Counter, Gauge, Histogram, MetricsRegistry, TraceScope};
use cwelmax_rrset::collection::{greedy_argmax, GreedySelection};
use cwelmax_rrset::condition_parts;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};

/// What [`write_store`] produced, for logs and tests.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StoreSummary {
    /// Shard files written.
    pub shards: usize,
    /// Retained sets distributed across them.
    pub total_sets: usize,
    /// Total bytes on disk (manifest + shards).
    pub bytes_on_disk: u64,
    /// Leftover shard files (from a crashed or larger previous write)
    /// that were pruned because the new manifest does not name them.
    pub stale_files_pruned: usize,
}

/// Extends [`EngineBuilder`] with the store source this crate provides:
/// with the trait in scope, `EngineBuilder::from_store(dir)` builds an
/// engine over a lazily opened [`ShardedIndex`] — the manifest is read
/// (and any open error surfaces) at `build()` time, uniformly with the
/// snapshot source.
///
/// ```no_run
/// use cwelmax_engine::EngineBuilder;
/// use cwelmax_store::FromStore;
/// # fn demo(graph: std::sync::Arc<cwelmax_graph::Graph>)
/// #     -> Result<(), cwelmax_engine::EngineError> {
/// let engine = EngineBuilder::from_store("big-graph.store")
///     .graph(graph)
///     .build()?;
/// # Ok(())
/// # }
/// ```
pub trait FromStore {
    /// Serve from a sharded store directory (manifest eagerly at build,
    /// shards lazily at query time).
    fn from_store(dir: impl AsRef<Path>) -> EngineBuilder;

    /// Serve from a store directory opened as a [`crate::JournaledStore`]:
    /// the journal (if any) is replayed at build time, and the engine can
    /// grow the store live through `ensure_theta` (the wire `topup`
    /// request). Use this over [`FromStore::from_store`] whenever the
    /// serving process should accept mutations.
    fn from_journaled_store(dir: impl AsRef<Path>) -> EngineBuilder;
}

impl FromStore for EngineBuilder {
    fn from_store(dir: impl AsRef<Path>) -> EngineBuilder {
        let dir = dir.as_ref().to_path_buf();
        // the opener receives the builder's registry, so the store's
        // fault counters land next to the engine's query counters
        EngineBuilder::from_backend_fn(move |metrics| {
            Ok(
                Arc::new(ShardedIndex::open_with_metrics(dir, Arc::clone(metrics))?)
                    as Arc<dyn IndexBackend>,
            )
        })
    }

    fn from_journaled_store(dir: impl AsRef<Path>) -> EngineBuilder {
        let dir = dir.as_ref().to_path_buf();
        EngineBuilder::from_backend_fn(move |metrics| {
            Ok(Arc::new(crate::topup::JournaledStore::open_with_metrics(
                dir,
                Arc::clone(metrics),
            )?) as Arc<dyn IndexBackend>)
        })
    }
}

/// Partition a frozen index into a store directory: N shard files
/// holding contiguous set ranges (written in parallel across a bounded
/// worker pool), then the manifest — last, and atomically. The
/// budget-cap greedy pool is computed once here and persisted in the
/// manifest; serving never recomputes it.
///
/// Overwriting an existing store is safe against crashes: all new files
/// are staged as `.tmp` first, then the **old manifest is deleted**
/// before any shard is swapped in, so at every instant the directory
/// either parses as the complete old store, fails to open with a clean
/// "no manifest" error (mid-swap crash — never a store whose manifest
/// and shards disagree), or parses as the complete new store. Any
/// leftover shard files the new manifest does not name — a previous
/// larger shard count, a crashed half-written store, stranded `.tmp`
/// stages — are swept away ([`StoreSummary::stale_files_pruned`]).
///
/// Output bytes are a pure function of `(index, shards)`: no timestamps,
/// no iteration-order dependence — writing twice is byte-identical,
/// which makes stores diffable and content-addressable exactly like
/// snapshots.
pub fn write_store(
    index: &RrIndex,
    dir: impl AsRef<Path>,
    shards: usize,
) -> Result<StoreSummary, EngineError> {
    if shards == 0 {
        return Err(EngineError::BadQuery("shard count must be positive".into()));
    }
    let dir = dir.as_ref();
    std::fs::create_dir_all(dir)?;
    let (set_offsets, members, weights) = index.canonical_parts();
    let total = index.num_sets();
    let chunk = total.div_ceil(shards).max(1);
    let fingerprint = index.meta().graph_fingerprint;
    // stage 1: serialize + write every shard as `.tmp`, in parallel over
    // a bounded pool (shard counts are user-controlled — don't spawn one
    // thread per shard). Each job is a pure function of its contiguous
    // set range; per-worker results are concatenated in shard order.
    let workers = worker_count(shards);
    let per_worker = shards.div_ceil(workers);
    let worker_results: Vec<Result<Vec<ShardInfo>, EngineError>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|w| {
                scope.spawn(move || {
                    let mut infos = Vec::new();
                    for k in (w * per_worker)..((w + 1) * per_worker).min(shards) {
                        let lo = (k * chunk).min(total);
                        let hi = ((k + 1) * chunk).min(total);
                        let base = set_offsets[lo];
                        let local_offsets: Vec<u64> = set_offsets[lo..=hi]
                            .iter()
                            .map(|&x| (x - base) as u64)
                            .collect();
                        let bytes = shard_to_bytes(&ShardParts {
                            shard_id: k,
                            graph_fingerprint: fingerprint,
                            set_start: lo,
                            set_offsets: local_offsets,
                            members: &members[base..set_offsets[hi]],
                            weights: &weights[lo..hi],
                        });
                        std::fs::write(shard_path(dir, k).with_extension("tmp"), &bytes)?;
                        infos.push(ShardInfo {
                            set_start: lo,
                            set_count: hi - lo,
                            file_bytes: bytes.len() as u64,
                            file_crc: crc32(&bytes),
                        });
                    }
                    Ok(infos)
                })
            })
            .collect();
        handles
            .into_iter()
            // lint:allow(no-panic-in-serving) -- build-time path, not serving; a panicked writer thread means a torn store and must propagate
            .map(|h| h.join().expect("shard writer panicked"))
            .collect()
    });
    let mut infos = Vec::with_capacity(shards);
    for r in worker_results {
        infos.extend(r?);
    }
    // stage 2: point of no return — delete the old manifest (if any), so
    // a crash while shards are being swapped leaves a directory that
    // cleanly fails to open instead of an old manifest over new shards
    match std::fs::remove_file(dir.join(MANIFEST_FILE)) {
        Ok(()) => {}
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => {}
        Err(e) => return Err(e.into()),
    }
    // stage 3: swap the staged shards in, then sweep the whole directory
    // for shard files the new manifest will not name — not just a
    // contiguous run above `shards`, but *any* leftover from a crashed,
    // larger, or interrupted previous write (`shard-0007.cwsx` behind a
    // gap, stranded `.tmp` stages). Anything matching the shard naming
    // scheme that isn't one of the files just written is stale: serving
    // never reads it, but it silently inflates the directory and a
    // future manual copy could resurrect it.
    for k in 0..shards {
        let path = shard_path(dir, k);
        std::fs::rename(path.with_extension("tmp"), &path)?;
    }
    let stale_files_pruned = prune_stale_shards(dir, shards);
    // stage 4: the new manifest, atomically — its appearance is what
    // makes the directory a store again
    let shard_bytes: u64 = infos.iter().map(|s| s.file_bytes).sum();
    let manifest = Manifest {
        meta: *index.meta(),
        num_nodes: index.num_nodes(),
        num_sampled: index.num_sampled(),
        total_sets: total,
        pool: index.greedy_select(index.meta().budget_cap as usize).seeds,
        shards: infos,
    };
    let bytes = manifest.to_bytes();
    let path = dir.join(MANIFEST_FILE);
    let tmp = path.with_extension("tmp");
    std::fs::write(&tmp, &bytes)?;
    std::fs::rename(&tmp, &path)?;
    Ok(StoreSummary {
        shards,
        total_sets: total,
        bytes_on_disk: shard_bytes + bytes.len() as u64,
        stale_files_pruned,
    })
}

/// Delete every file in `dir` that matches the shard naming scheme but
/// is not one of the `shards` files the new manifest names: shard files
/// with an index at or above the new count (including ones stranded
/// behind gaps), non-canonical spellings of in-range indices, and
/// `.tmp` staging leftovers from a crashed writer. Returns how many
/// were removed.
///
/// Strictly best-effort: by the time this runs the new store is fully
/// on disk except for its manifest, and serving never reads stale
/// files — an un-removable leftover (held open elsewhere, or a
/// directory wearing a shard name) must not abort the write and strand
/// a manifest-less directory.
fn prune_stale_shards(dir: &Path, shards: usize) -> usize {
    // the exact file names the manifest names — membership is by full
    // name, not parsed index, so a non-canonical spelling of a valid
    // index ("shard-1.cwsx", "shard-+0001.cwsx") is still stale
    let named: std::collections::HashSet<std::ffi::OsString> = (0..shards)
        .filter_map(|k| shard_path(dir, k).file_name().map(|n| n.to_os_string()))
        .collect();
    let Ok(entries) = std::fs::read_dir(dir) else {
        return 0;
    };
    let mut pruned = 0;
    for entry in entries.flatten() {
        let name = entry.file_name();
        if named.contains(&name) {
            continue;
        }
        let Some(name) = name.to_str() else { continue };
        let Some(rest) = name.strip_prefix("shard-") else {
            continue;
        };
        // sweep only shapes a shard writer ever creates: shard files and
        // `.tmp` stages (ours are all renamed away by now). Anything
        // else under the prefix is not ours to delete.
        if (rest.ends_with(".cwsx") || rest.ends_with(".tmp"))
            && std::fs::remove_file(entry.path()).is_ok()
        {
            pruned += 1;
        }
    }
    pruned
}

/// Bounded parallelism for shard I/O (and top-up sampling): one worker
/// per core, never more than there are jobs, at least one.
pub(crate) fn worker_count(jobs: usize) -> usize {
    std::thread::available_parallelism()
        .map(|t| t.get())
        .unwrap_or(4)
        .clamp(1, jobs.max(1))
}

/// A store directory opened for serving: eager manifest, lazy shards.
/// Immutable and `&self`-queryable — share it behind an `Arc` exactly
/// like an [`RrIndex`].
pub struct ShardedIndex {
    dir: PathBuf,
    manifest: Manifest,
    /// One lazy slot per shard; a slot holds the loaded per-shard index
    /// or the (cached) load error.
    slots: Vec<OnceLock<Result<Arc<RrIndex>, EngineError>>>,
    /// Shards successfully resident (monotone; drives `shards_loaded`).
    loaded: AtomicU64,
    /// Manifest + declared shard file bytes.
    bytes_on_disk: u64,
    /// The registry the fault metrics below live in (shared with the
    /// engine when opened through `EngineBuilder::from_store`).
    metrics: Arc<MetricsRegistry>,
    /// Shard-file fault attempts (each shard faults at most once —
    /// success and failure are both cached).
    shard_faults: Arc<Counter>,
    /// Fault attempts that failed (missing file, CRC mismatch, identity
    /// mismatch) — a flaky disk shows up here, not just as slow queries.
    shard_fault_errors: Arc<Counter>,
    /// Bytes read from shard files (counted even when validation then
    /// rejects them).
    shard_fault_bytes: Arc<Counter>,
    /// Wall-clock fault duration (read + validate + freeze), per attempt.
    shard_fault_ns: Arc<Histogram>,
    /// Bytes of shard files currently resident in memory (grows from 0
    /// as shards fault in; compare against `bytes_on_disk` for a live
    /// residency ratio — the bigger-than-RAM observability hook).
    resident_bytes: Arc<Gauge>,
}

impl ShardedIndex {
    /// Open a store by reading and validating **only** its manifest —
    /// `O(manifest)` work no matter how large the index is. Shard files
    /// are not read, not even `stat`ed, until a query touches them.
    /// Records into a private registry; serving paths use
    /// [`ShardedIndex::open_with_metrics`] to share the stack's.
    pub fn open(dir: impl AsRef<Path>) -> Result<ShardedIndex, EngineError> {
        ShardedIndex::open_with_metrics(dir, MetricsRegistry::new())
    }

    /// [`ShardedIndex::open`], recording fault metrics (and the manifest
    /// open time, `store.manifest_open_ns`) into the given registry.
    pub fn open_with_metrics(
        dir: impl AsRef<Path>,
        metrics: Arc<MetricsRegistry>,
    ) -> Result<ShardedIndex, EngineError> {
        let start = std::time::Instant::now();
        let dir = dir.as_ref().to_path_buf();
        let bytes = std::fs::read(dir.join(MANIFEST_FILE))?;
        let manifest = Manifest::from_bytes(&bytes)?;
        metrics
            .histogram("store.manifest_open_ns")
            .record_since(start);
        let shard_bytes: u64 = manifest.shards.iter().map(|s| s.file_bytes).sum();
        let slots = (0..manifest.shards.len())
            .map(|_| OnceLock::new())
            .collect();
        // a freshly opened store has zero shards resident; reset rather
        // than add so a reopen (compaction swaps the base in-place over
        // the same registry) doesn't inherit the old instance's residency
        let resident_bytes = metrics.gauge("store.resident_bytes");
        resident_bytes.set(0);
        Ok(ShardedIndex {
            dir,
            manifest,
            slots,
            loaded: AtomicU64::new(0),
            bytes_on_disk: shard_bytes + bytes.len() as u64,
            shard_faults: metrics.counter("store.shard_faults"),
            shard_fault_errors: metrics.counter("store.shard_fault_errors"),
            shard_fault_bytes: metrics.counter("store.shard_fault_bytes"),
            shard_fault_ns: metrics.histogram("store.shard_fault_ns"),
            resident_bytes,
            metrics,
        })
    }

    /// The registry this store records into.
    pub fn metrics(&self) -> &Arc<MetricsRegistry> {
        &self.metrics
    }

    /// Fault attempts that failed so far (tests and health checks).
    pub fn shard_fault_errors(&self) -> u64 {
        self.shard_fault_errors.get()
    }

    /// Build metadata (identical in meaning to a snapshot's).
    pub fn meta(&self) -> &IndexMeta {
        &self.manifest.meta
    }

    /// Node-universe size.
    pub fn num_nodes(&self) -> usize {
        self.manifest.num_nodes
    }

    /// θ — total sets sampled (estimator denominator).
    pub fn num_sampled(&self) -> usize {
        self.manifest.num_sampled
    }

    /// Total retained sets across all shards.
    pub fn num_sets(&self) -> usize {
        self.manifest.total_sets
    }

    /// Number of shards the store is partitioned into.
    pub fn shards_total(&self) -> usize {
        self.slots.len()
    }

    /// Shards currently resident in memory.
    pub fn shards_loaded(&self) -> usize {
        self.loaded.load(Ordering::Relaxed) as usize
    }

    /// Manifest + shard bytes on disk (from the manifest's declarations).
    pub fn bytes_on_disk(&self) -> u64 {
        self.bytes_on_disk
    }

    /// Shard-file bytes currently resident in memory (the
    /// `store.resident_bytes` gauge; ≤ [`ShardedIndex::bytes_on_disk`]).
    pub fn resident_bytes(&self) -> u64 {
        self.resident_bytes.get().max(0) as u64
    }

    /// The persisted ordered greedy pool at the budget cap. Serving fresh
    /// campaigns from here is what lets a store answer queries with
    /// **zero** shards resident.
    pub fn pool(&self) -> &[NodeId] {
        &self.manifest.pool
    }

    /// The estimator scale `n · M / θ` (same contract as
    /// [`RrIndex::estimate`]; needs no shard).
    pub fn estimate(&self, covered_weight: f64) -> f64 {
        if self.manifest.num_sampled == 0 {
            0.0
        } else {
            self.manifest.num_nodes as f64 * covered_weight / self.manifest.num_sampled as f64
        }
    }

    /// Shard `k`, faulting it in on first touch. The load verifies the
    /// manifest's whole-file CRC and byte length, the shard frame's own
    /// CRC, and the shard/manifest cross-identity (id, graph fingerprint,
    /// set range) before freezing the parts through the validating
    /// [`RrIndex::from_canonical`]. A failure is cached: a corrupt shard
    /// keeps failing without re-reading the file, and — crucially — it
    /// never poisons its siblings, which proptests assert still serve.
    pub fn shard(&self, k: usize) -> Result<Arc<RrIndex>, EngineError> {
        let slot = self.slots.get(k).ok_or_else(|| {
            EngineError::BadQuery(format!(
                "shard {k} out of range: store has {} shards",
                self.slots.len()
            ))
        })?;
        let result = slot.get_or_init(|| {
            self.shard_faults.incr();
            let start = std::time::Instant::now();
            let loaded = self.load_shard(k);
            self.shard_fault_ns.record_since(start);
            match loaded {
                Ok(idx) => {
                    self.loaded.fetch_add(1, Ordering::Relaxed);
                    self.resident_bytes
                        .add(self.manifest.shards[k].file_bytes as i64);
                    Ok(Arc::new(idx))
                }
                Err(e) => {
                    self.shard_fault_errors.incr();
                    Err(e)
                }
            }
        });
        match result {
            Ok(idx) => Ok(idx.clone()),
            Err(e) => Err(e.duplicate()),
        }
    }

    /// True when shard `k` is resident (tests observe laziness with this).
    pub fn shard_is_loaded(&self, k: usize) -> bool {
        matches!(self.slots.get(k).and_then(OnceLock::get), Some(Ok(_)))
    }

    /// The uncached load path for shard `k`.
    fn load_shard(&self, k: usize) -> Result<RrIndex, EngineError> {
        let info = &self.manifest.shards[k];
        let bytes = std::fs::read(shard_path(&self.dir, k))?;
        self.shard_fault_bytes.add(bytes.len() as u64);
        if bytes.len() as u64 != info.file_bytes {
            return Err(EngineError::Corrupt(format!(
                "shard {k}: file is {} bytes, manifest declares {}",
                bytes.len(),
                info.file_bytes
            )));
        }
        let crc = crc32(&bytes);
        if crc != info.file_crc {
            return Err(EngineError::Corrupt(format!(
                "shard {k}: file checksum {crc:#010x} does not match manifest {:#010x}",
                info.file_crc
            )));
        }
        let payload = shard_from_bytes(&bytes)?;
        if payload.shard_id != k {
            return Err(EngineError::Corrupt(format!(
                "shard {k}: file claims to be shard {}",
                payload.shard_id
            )));
        }
        if payload.graph_fingerprint != self.manifest.meta.graph_fingerprint {
            return Err(EngineError::Corrupt(format!(
                "shard {k}: graph fingerprint {:#018x} does not match the store's {:#018x}",
                payload.graph_fingerprint, self.manifest.meta.graph_fingerprint
            )));
        }
        if payload.set_start != info.set_start || payload.weights.len() != info.set_count {
            return Err(EngineError::Corrupt(format!(
                "shard {k}: holds sets {}..{} but the manifest assigns {}..{}",
                payload.set_start,
                payload.set_start + payload.weights.len(),
                info.set_start,
                info.set_start + info.set_count
            )));
        }
        // θ is global: each shard's estimator is the *marginal* share of
        // the one sampling effort, and the structural check "retained ≤ θ"
        // holds a fortiori for a subset
        RrIndex::from_canonical(
            self.manifest.num_nodes,
            self.manifest.num_sampled,
            payload.set_offsets,
            payload.members,
            payload.weights,
            self.manifest.meta,
        )
    }

    /// All shards, faulting the missing ones in **in parallel** across a
    /// bounded worker pool (at most one worker per core — shard counts
    /// are user-controlled, so a 1000-shard store must not stampede 1000
    /// threads of file I/O on its first whole-index query; resident
    /// shards cost an `Arc` clone). The first failing shard's error
    /// (lowest id, deterministically) is returned; siblings that loaded
    /// stay resident.
    pub fn load_all(&self) -> Result<Vec<Arc<RrIndex>>, EngineError> {
        self.load_all_traced(None)
    }

    /// [`ShardedIndex::load_all`] recording one `store.shard_fault` span
    /// per *missing* shard under `trace` (resident shards cost an `Arc`
    /// clone and earn no span). Spans are recorded from the fault worker
    /// threads — [`TraceScope`] is `Copy + Sync`, so each scoped thread
    /// carries its own copy and pushes into the shared trace.
    fn load_all_traced(
        &self,
        trace: Option<TraceScope<'_>>,
    ) -> Result<Vec<Arc<RrIndex>>, EngineError> {
        let missing: Vec<usize> = (0..self.slots.len())
            .filter(|&k| self.slots[k].get().is_none())
            .collect();
        let fault = |k: usize| {
            let mut span = trace.map(|s| s.span("store.shard_fault"));
            if let Some(sp) = span.as_mut() {
                sp.attr("shard", k as u64);
            }
            let faulted = self.shard(k);
            if faulted.is_err() {
                if let Some(sp) = span.as_mut() {
                    sp.attr("error", true);
                }
            }
        };
        if missing.len() > 1 {
            let workers = worker_count(missing.len());
            let chunk = missing.len().div_ceil(workers);
            std::thread::scope(|scope| {
                for ids in missing.chunks(chunk) {
                    let fault = &fault;
                    scope.spawn(move || {
                        for &k in ids {
                            fault(k);
                        }
                    });
                }
            });
        } else if let Some(&k) = missing.first() {
            fault(k);
        }
        (0..self.slots.len()).map(|k| self.shard(k)).collect()
    }

    /// Total weight covered by `seeds` — bit-identical to
    /// [`RrIndex::coverage_of`] on the monolithic index: seeds outer,
    /// shards in global set order inner, so every `f64` addition happens
    /// in the same order.
    pub fn coverage_of(&self, seeds: &[NodeId]) -> Result<f64, EngineError> {
        let shards = self.load_all()?;
        let mut covered: Vec<Vec<bool>> =
            shards.iter().map(|sh| vec![false; sh.num_sets()]).collect();
        let mut total = 0.0;
        for &s in seeds {
            for (sh, cov) in shards.iter().zip(covered.iter_mut()) {
                let weights = sh.canonical_parts().2;
                for &j in sh.postings(s) {
                    if !cov[j as usize] {
                        cov[j as usize] = true;
                        total += weights[j as usize];
                    }
                }
            }
        }
        Ok(total)
    }

    /// Global ids of the sets containing node `v` (each shard's postings
    /// shifted by its `set_start`; increasing, like the monolithic
    /// index's).
    pub fn postings(&self, v: NodeId) -> Result<Vec<u32>, EngineError> {
        let shards = self.load_all()?;
        let mut out = Vec::new();
        for (sh, info) in shards.iter().zip(&self.manifest.shards) {
            out.extend(sh.postings(v).iter().map(|&j| j + info.set_start as u32));
        }
        Ok(out)
    }

    /// Greedy `NodeSelection` over all shards, merging per-shard marginal
    /// gains — bit-identical to [`RrIndex::greedy_select`] on the
    /// monolithic index (same accumulation order, same `greedy_argmax`
    /// tie-breaks), proptested across shard counts. Loads every shard
    /// (in parallel): a global argmax needs global gains. The *serving*
    /// path never calls this — the budget-cap pool is persisted in the
    /// manifest — it exists for ad-hoc selection and as the equivalence
    /// oracle.
    pub fn greedy_select(&self, b: usize) -> Result<GreedySelection, EngineError> {
        let shards = self.load_all()?;
        let n = self.manifest.num_nodes;
        let mut gain = vec![0.0f64; n];
        for sh in &shards {
            let weights = sh.canonical_parts().2;
            for (j, &w) in weights.iter().enumerate() {
                for &v in sh.set(j) {
                    gain[v as usize] += w;
                }
            }
        }
        let mut covered: Vec<Vec<bool>> =
            shards.iter().map(|sh| vec![false; sh.num_sets()]).collect();
        let mut seeds = Vec::with_capacity(b);
        let mut coverage = Vec::with_capacity(b);
        let mut total = 0.0;
        for _ in 0..b.min(n) {
            let (best, best_gain) = match greedy_argmax(&gain) {
                Some(x) => x,
                None => break,
            };
            seeds.push(best as NodeId);
            total += best_gain;
            coverage.push(total);
            for (sh, cov) in shards.iter().zip(covered.iter_mut()) {
                let weights = sh.canonical_parts().2;
                for &j in sh.postings(best as NodeId) {
                    let j = j as usize;
                    if cov[j] {
                        continue;
                    }
                    cov[j] = true;
                    for &v in sh.set(j) {
                        gain[v as usize] -= weights[j];
                    }
                }
            }
            gain[best] = f64::NEG_INFINITY; // never pick the same node twice
        }
        Ok(GreedySelection { seeds, coverage })
    }
}

impl IndexBackend for ShardedIndex {
    fn meta(&self) -> &IndexMeta {
        self.meta()
    }

    fn num_nodes(&self) -> usize {
        self.num_nodes()
    }

    fn num_sampled(&self) -> usize {
        self.num_sampled()
    }

    /// The persisted manifest pool — **zero** shard loads: a fresh
    /// campaign against a cold store touches no shard file at all.
    fn pool_at_cap(&self) -> Result<Vec<NodeId>, EngineError> {
        Ok(self.manifest.pool.clone())
    }

    /// Filter every shard against `SP` (shards in global order, so the
    /// concatenated survivors are bit-identical to filtering the
    /// monolithic parts) and assemble the view. This is the one follow-up
    /// cost a sharded store pays over a monolithic index: the first SP
    /// query faults all shards in.
    fn derive_conditioned(&self, sp_nodes: &[NodeId]) -> Result<ConditionedView, EngineError> {
        self.derive_conditioned_traced(sp_nodes, None)
    }

    /// The traced variant is the real implementation: it hangs one
    /// `store.derive_conditioned` span off the engine's derive span, with
    /// the per-shard fault spans from [`ShardedIndex::load_all_traced`]
    /// nested underneath — so a follow-up campaign's trace shows exactly
    /// which shards its first SP query paid to fault in.
    fn derive_conditioned_traced(
        &self,
        sp_nodes: &[NodeId],
        trace: Option<TraceScope<'_>>,
    ) -> Result<ConditionedView, EngineError> {
        let mut span = trace.map(|s| s.span("store.derive_conditioned"));
        if let Some(sp) = span.as_mut() {
            sp.attr("shards_total", self.slots.len() as u64);
        }
        let child = span.as_ref().map(|sp| sp.scope());
        let n = self.manifest.num_nodes;
        let nodes = validated_sp_nodes(n, sp_nodes)?;
        let shards = self.load_all_traced(child)?;
        let mut set_offsets = vec![0usize];
        let mut members: Vec<NodeId> = Vec::new();
        let mut weights: Vec<f64> = Vec::new();
        for sh in &shards {
            let (o, m, w) = sh.canonical_parts();
            let (fo, fm, fw) = condition_parts(n, o, m, w, &nodes);
            let base = members.len();
            members.extend_from_slice(&fm);
            weights.extend_from_slice(&fw);
            set_offsets.extend(fo[1..].iter().map(|&x| x + base));
        }
        let removed = self.manifest.total_sets - weights.len();
        ConditionedView::from_conditioned_parts(
            nodes,
            n,
            self.manifest.num_sampled,
            set_offsets,
            members,
            weights,
            self.manifest.meta,
            removed,
        )
    }

    fn storage(&self) -> StorageStats {
        StorageStats {
            shards_total: self.slots.len() as u64,
            shards_loaded: self.loaded.load(Ordering::Relaxed),
            bytes_on_disk: self.bytes_on_disk,
            ..StorageStats::default()
        }
    }
}

//! Property and adversarial tests for the sharded store: equivalence
//! with the monolithic index (bit-identical, across shard counts),
//! corruption robustness, lazy-load observability, and engine
//! integration.

use cwelmax_engine::{
    graph_fingerprint, ConditionedView, EngineBuilder, EngineError, IndexBackend, IndexMeta,
    RrIndex,
};
use cwelmax_graph::{generators, ProbabilityModel as PM};
use cwelmax_rrset::{RrCollection, StandardRr};
use cwelmax_store::{write_store, FromStore, ShardedIndex};
use proptest::prelude::*;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// A fresh per-call scratch directory (unique across tests and proptest
/// cases in this process; stale runs are overwritten, not appended to).
fn scratch(tag: &str) -> PathBuf {
    static NEXT: AtomicU64 = AtomicU64::new(0);
    let dir = std::env::temp_dir().join(format!(
        "cwelmax-store-test-{}-{tag}-{}",
        std::process::id(),
        NEXT.fetch_add(1, Ordering::Relaxed)
    ));
    if dir.exists() {
        std::fs::remove_dir_all(&dir).ok();
    }
    dir
}

fn index_from(seed: u64, n: usize, sets: usize, cap: u32) -> RrIndex {
    let g = generators::erdos_renyi(n, n * 4, seed, PM::WeightedCascade);
    let mut c = RrCollection::new(n);
    c.extend_parallel(&g, &StandardRr, sets, seed ^ 0x51AB, 2);
    RrIndex::freeze(
        &c,
        IndexMeta {
            eps: 0.5,
            ell: 1.0,
            seed,
            budget_cap: cap,
            graph_fingerprint: graph_fingerprint(&g),
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(20))]

    /// The tentpole equivalence bar: for arbitrary build inputs and any
    /// shard count 1..8 — including counts exceeding the set count —
    /// `coverage_of`, `greedy_select`, `postings`, and the persisted
    /// pool are **byte-identical** to the monolithic index the store was
    /// written from.
    #[test]
    fn sharded_queries_equal_monolithic_bit_for_bit(
        seed in 0u64..5_000,
        n in 5usize..60,
        sets in 0usize..400,
        shards in 1usize..8,
    ) {
        let idx = index_from(seed, n, sets, 6);
        let dir = scratch("equiv");
        write_store(&idx, &dir, shards).unwrap();
        let store = ShardedIndex::open(&dir).unwrap();
        prop_assert_eq!(store.num_nodes(), idx.num_nodes());
        prop_assert_eq!(store.num_sampled(), idx.num_sampled());
        prop_assert_eq!(store.num_sets(), idx.num_sets());
        prop_assert_eq!(store.meta(), idx.meta());

        // the persisted pool is the monolithic budget-cap selection
        prop_assert_eq!(store.pool(), &idx.greedy_select(6).seeds[..]);

        // coverage: identical bits (same f64 accumulation order)
        let probes: [&[u32]; 4] = [&[], &[0], &[1, 3, 2], &[(n as u32) - 1, 0, 2]];
        for seeds in probes {
            prop_assert_eq!(
                store.coverage_of(seeds).unwrap().to_bits(),
                idx.coverage_of(seeds).to_bits(),
                "coverage diverged for {:?}", seeds
            );
        }
        prop_assert_eq!(store.estimate(2.5), idx.estimate(2.5));

        // greedy selection: same seeds, same coverage prefix, same bits
        for b in [1usize, 3, 6] {
            let a = store.greedy_select(b).unwrap();
            let e = idx.greedy_select(b);
            prop_assert_eq!(&a.seeds, &e.seeds, "budget {}", b);
            let a_bits: Vec<u64> = a.coverage.iter().map(|x| x.to_bits()).collect();
            let e_bits: Vec<u64> = e.coverage.iter().map(|x| x.to_bits()).collect();
            prop_assert_eq!(a_bits, e_bits, "budget {}", b);
        }

        // postings: global ids in the monolithic order
        for v in 0..(n as u32) {
            prop_assert_eq!(&store.postings(v).unwrap()[..], idx.postings(v), "node {}", v);
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    /// SP-conditioned derivation through the sharded backend equals the
    /// monolithic `ConditionedView::derive` exactly (inner parts, pool,
    /// removed-set count) for arbitrary SP node sets.
    #[test]
    fn sharded_conditioning_equals_monolithic(
        seed in 0u64..3_000,
        shards in 1usize..8,
        sp_seed in 0u64..500,
        sp_len in 0usize..5,
    ) {
        let n = 40usize;
        let idx = index_from(seed, n, 300, 5);
        let dir = scratch("cond");
        write_store(&idx, &dir, shards).unwrap();
        let store = ShardedIndex::open(&dir).unwrap();
        let sp: Vec<u32> = (0..sp_len)
            .map(|j| ((sp_seed + 11 * j as u64) % n as u64) as u32)
            .collect();
        let got = store.derive_conditioned(&sp).unwrap();
        let want = ConditionedView::derive(&idx, &sp).unwrap();
        prop_assert_eq!(got.sp_nodes(), want.sp_nodes());
        prop_assert_eq!(got.index().canonical_parts(), want.index().canonical_parts());
        prop_assert_eq!(got.index().num_sampled(), want.index().num_sampled());
        prop_assert_eq!(got.pool(), want.pool());
        prop_assert_eq!(got.removed_sets(), want.removed_sets());
        std::fs::remove_dir_all(&dir).ok();
    }

    /// Corruption robustness: flip one bit anywhere in one shard file —
    /// the store still opens (manifest intact), the persisted pool still
    /// serves, the damaged shard fails with `EngineError` (never a
    /// panic), and **every other shard keeps serving**.
    #[test]
    fn bit_flipped_shard_fails_alone(
        seed in 0u64..2_000,
        victim_frac in 0.0f64..1.0,
        pos_frac in 0.0f64..1.0,
        bit in 0u32..8,
    ) {
        let shards = 4usize;
        let idx = index_from(seed, 30, 200, 4);
        let dir = scratch("flip");
        write_store(&idx, &dir, shards).unwrap();
        let victim = ((shards - 1) as f64 * victim_frac) as usize;
        let path = dir.join(format!("shard-{victim:04}.cwsx"));
        let mut bytes = std::fs::read(&path).unwrap();
        let pos = ((bytes.len() - 1) as f64 * pos_frac) as usize;
        bytes[pos] ^= 1 << bit;
        std::fs::write(&path, &bytes).unwrap();

        let store = ShardedIndex::open(&dir).unwrap();
        prop_assert_eq!(store.pool(), &idx.greedy_select(4).seeds[..]);
        prop_assert_eq!(store.shard_fault_errors(), 0, "no faults attempted yet");
        match store.shard(victim) {
            Err(EngineError::Corrupt(_)) | Err(EngineError::UnsupportedVersion(_)) => {}
            Ok(_) => prop_assert!(false, "flipped shard {} accepted", victim),
            Err(e) => prop_assert!(false, "unexpected error kind: {}", e),
        }
        // the failed fault is counted — a flaky disk is visible in
        // metrics, not only in per-query errors
        prop_assert_eq!(store.shard_fault_errors(), 1);
        // the error is cached, not flapping — and not double-counted
        prop_assert!(store.shard(victim).is_err());
        prop_assert_eq!(store.shard_fault_errors(), 1);
        // every sibling still loads and serves its share of the data
        for k in (0..shards).filter(|&k| k != victim) {
            let sh = store.shard(k).unwrap_or_else(|e| {
                panic!("sibling shard {k} must keep serving, got {e}")
            });
            // spot-check the shard against the monolithic range it holds
            let probe = sh.coverage_of(&[0, 1, 2]);
            prop_assert!(probe.is_finite());
        }
        prop_assert_eq!(store.shards_loaded(), shards - 1);
        // the registry view agrees with the accessors: every shard was
        // faulted exactly once, one fault failed, duration was measured
        let snap = store.metrics().snapshot();
        prop_assert_eq!(snap.counters["store.shard_faults"], shards as u64);
        prop_assert_eq!(snap.counters["store.shard_fault_errors"], 1);
        prop_assert!(snap.counters["store.shard_fault_bytes"] > 0);
        prop_assert_eq!(snap.histograms["store.shard_fault_ns"].count, shards as u64);
        // whole-index operations over a damaged store are errors, not UB
        prop_assert!(store.coverage_of(&[0]).is_err());
        prop_assert!(store.greedy_select(2).is_err());
        std::fs::remove_dir_all(&dir).ok();
    }

    /// A truncated manifest is rejected with `EngineError` at open time.
    #[test]
    fn truncated_manifest_is_rejected(seed in 0u64..1_000, frac in 0.0f64..1.0) {
        let idx = index_from(seed, 20, 100, 3);
        let dir = scratch("trunc");
        write_store(&idx, &dir, 3).unwrap();
        let path = dir.join("manifest.bin");
        let bytes = std::fs::read(&path).unwrap();
        let cut = ((bytes.len() - 1) as f64 * frac) as usize;
        std::fs::write(&path, &bytes[..cut]).unwrap();
        match ShardedIndex::open(&dir) {
            Err(EngineError::Corrupt(_)) | Err(EngineError::UnsupportedVersion(_)) => {}
            Ok(_) => prop_assert!(false, "truncation to {} accepted", cut),
            Err(e) => prop_assert!(false, "unexpected error kind: {}", e),
        }
        std::fs::remove_dir_all(&dir).ok();
    }
}

/// More shards than retained sets: trailing shards are empty but valid,
/// and every query surface still matches the monolithic index.
#[test]
fn shard_count_exceeding_set_count_is_valid() {
    let g = generators::erdos_renyi(20, 80, 3, PM::WeightedCascade);
    let mut c = RrCollection::new(20);
    // push exactly 3 tiny sets by sampling very few
    c.extend_parallel(&g, &StandardRr, 3, 9, 1);
    let idx = RrIndex::freeze(
        &c,
        IndexMeta {
            eps: 0.5,
            ell: 1.0,
            seed: 3,
            budget_cap: 2,
            graph_fingerprint: graph_fingerprint(&g),
        },
    );
    assert!(idx.num_sets() <= 3);
    let dir = scratch("excess");
    let summary = write_store(&idx, &dir, 8).unwrap();
    assert_eq!(summary.shards, 8);
    let store = ShardedIndex::open(&dir).unwrap();
    assert_eq!(store.shards_total(), 8);
    let a = store.greedy_select(2).unwrap();
    let e = idx.greedy_select(2);
    assert_eq!(a.seeds, e.seeds);
    assert_eq!(a.coverage, e.coverage);
    assert_eq!(store.shards_loaded(), 8, "all shards (even empty) load");
    std::fs::remove_dir_all(&dir).ok();
}

/// Zero shards is an explicit error, not a panic or an empty store.
#[test]
fn zero_shard_count_is_rejected() {
    let idx = index_from(1, 15, 50, 2);
    let dir = scratch("zero");
    match write_store(&idx, &dir, 0) {
        Err(EngineError::BadQuery(msg)) => assert!(msg.contains("positive")),
        other => panic!("expected BadQuery, got {other:?}"),
    }
    std::fs::remove_dir_all(&dir).ok();
}

/// Writing the same index at the same shard count twice is byte-identical
/// file by file — stores are diffable and content-addressable like
/// snapshots.
#[test]
fn store_writes_are_deterministic() {
    let idx = index_from(11, 40, 300, 5);
    let (a, b) = (scratch("det-a"), scratch("det-b"));
    write_store(&idx, &a, 4).unwrap();
    write_store(&idx, &b, 4).unwrap();
    let mut names: Vec<String> = std::fs::read_dir(&a)
        .unwrap()
        .map(|e| e.unwrap().file_name().into_string().unwrap())
        .collect();
    names.sort();
    assert_eq!(names.len(), 5, "manifest + 4 shards, no leftovers");
    for name in &names {
        assert_eq!(
            std::fs::read(a.join(name)).unwrap(),
            std::fs::read(b.join(name)).unwrap(),
            "{name} diverged between identical writes"
        );
    }
    std::fs::remove_dir_all(&a).ok();
    std::fs::remove_dir_all(&b).ok();
}

/// Rewriting a store in place is safe: a smaller shard count prunes the
/// stale trailing shard files, no `.tmp` staging files are left behind,
/// and the rewritten store opens and serves identically.
#[test]
fn rewriting_a_store_prunes_stale_shards() {
    let idx = index_from(17, 40, 300, 5);
    let dir = scratch("rewrite");
    write_store(&idx, &dir, 8).unwrap();
    let summary = write_store(&idx, &dir, 3).unwrap();
    assert_eq!(summary.shards, 3);
    let mut names: Vec<String> = std::fs::read_dir(&dir)
        .unwrap()
        .map(|e| e.unwrap().file_name().into_string().unwrap())
        .collect();
    names.sort();
    assert_eq!(
        names,
        vec![
            "manifest.bin",
            "shard-0000.cwsx",
            "shard-0001.cwsx",
            "shard-0002.cwsx"
        ],
        "stale shards from the 8-shard write must be pruned, no .tmp left"
    );
    let store = ShardedIndex::open(&dir).unwrap();
    assert_eq!(store.shards_total(), 3);
    let a = store.greedy_select(5).unwrap();
    let e = idx.greedy_select(5);
    assert_eq!(a.seeds, e.seeds);
    assert_eq!(a.coverage, e.coverage);
    std::fs::remove_dir_all(&dir).ok();
}

/// The lazy-load lifecycle, observed through the counters the server
/// exposes: open loads nothing, the persisted pool loads nothing,
/// touching one shard loads one, whole-index ops load all.
#[test]
fn shards_load_lazily_and_exactly_once() {
    let idx = index_from(21, 50, 400, 6);
    let dir = scratch("lazy");
    let summary = write_store(&idx, &dir, 5).unwrap();
    let store = ShardedIndex::open(&dir).unwrap();
    assert_eq!(store.shards_total(), 5);
    assert_eq!(store.shards_loaded(), 0, "open reads only the manifest");
    assert_eq!(store.bytes_on_disk(), summary.bytes_on_disk);

    let _ = store.pool();
    let _ = store.pool_at_cap().unwrap();
    let _ = store.estimate(1.0);
    assert_eq!(store.shards_loaded(), 0, "the persisted pool is shard-free");

    let sh0 = store.shard(0).unwrap();
    assert_eq!(store.shards_loaded(), 1);
    assert!(store.shard_is_loaded(0) && !store.shard_is_loaded(1));
    // a second touch is the cached Arc, not a re-read
    assert!(Arc::ptr_eq(&sh0, &store.shard(0).unwrap()));

    store.coverage_of(&[0, 3]).unwrap();
    assert_eq!(store.shards_loaded(), 5, "coverage needs every shard");
    std::fs::remove_dir_all(&dir).ok();
}

/// A store-backed engine answers byte-identically to a monolithic-index
/// engine, and its stats expose the lazy behavior: a fresh campaign
/// touches zero shards, the first follow-up faults all of them in.
#[test]
fn engine_over_store_matches_monolithic_and_stays_lazy() {
    use cwelmax_diffusion::Allocation;
    use cwelmax_engine::{CampaignQuery, QueryAlgorithm};
    use cwelmax_utility::configs::{self, TwoItemConfig};

    let graph = Arc::new(generators::erdos_renyi(80, 320, 7, PM::WeightedCascade));
    let mut c = RrCollection::new(80);
    c.extend_parallel(&graph, &StandardRr, 2000, 7 ^ 0x51AB, 2);
    let idx = RrIndex::freeze(
        &c,
        IndexMeta {
            eps: 0.5,
            ell: 1.0,
            seed: 7,
            budget_cap: 6,
            graph_fingerprint: graph_fingerprint(&graph),
        },
    );
    let dir = scratch("engine");
    write_store(&idx, &dir, 4).unwrap();
    // the builder's store source: manifest read at build(), shards lazy
    let lazy = EngineBuilder::from_store(&dir)
        .graph(graph.clone())
        .build()
        .unwrap();
    let mono = EngineBuilder::from_index(Arc::new(idx))
        .graph(graph)
        .build()
        .unwrap();

    let fresh = CampaignQuery::new(
        configs::two_item_config(TwoItemConfig::C1),
        vec![2, 2],
        QueryAlgorithm::SeqGrdNm,
    )
    .with_samples(200);
    let a = lazy.query(&fresh).unwrap();
    let b = mono.query(&fresh).unwrap();
    assert_eq!(a.allocation, b.allocation);
    assert_eq!(a.welfare, b.welfare);
    let s = lazy.stats();
    assert_eq!(s.shards_total, 4);
    assert_eq!(s.shards_loaded, 0, "a fresh campaign must touch no shard");
    assert!(s.store_bytes_on_disk > 0);

    let follow = CampaignQuery::new(
        configs::two_item_config(TwoItemConfig::C2),
        vec![2, 2],
        QueryAlgorithm::SeqGrdNm,
    )
    .with_sp(Allocation::from_pairs(vec![(5, 1), (11, 1)]))
    .with_samples(200);
    let a = lazy.query(&follow).unwrap();
    let b = mono.query(&follow).unwrap();
    assert_eq!(a.allocation, b.allocation);
    assert_eq!(a.welfare, b.welfare);
    assert_eq!(
        lazy.stats().shards_loaded,
        4,
        "conditioning filters every shard"
    );
    // graph-fingerprint protection applies to stores too
    let other = Arc::new(generators::erdos_renyi(80, 320, 8, PM::WeightedCascade));
    match EngineBuilder::from_store(&dir).graph(other).build() {
        Err(EngineError::GraphMismatch { .. }) => {}
        other => panic!("expected GraphMismatch, got {:?}", other.err()),
    }
    std::fs::remove_dir_all(&dir).ok();
}

/// Rewriting a store over a half-written (or differently sharded)
/// directory must not leave stale shard files behind: anything matching
/// the shard naming scheme that the new manifest does not name — files
/// above the new count, files stranded behind gaps, `.tmp` staging
/// leftovers — is swept, and the sweep is reported in the summary.
#[test]
fn rewrite_prunes_stale_shards_the_new_manifest_does_not_name() {
    let idx = index_from(47, 30, 200, 3);
    let dir = scratch("stale");
    std::fs::create_dir_all(&dir).unwrap();
    // simulate a crashed, larger previous write: a shard beyond the new
    // count, one stranded behind a gap, an abandoned staging file, and a
    // non-canonical spelling of an in-range index (the manifest names
    // only the zero-padded form, so this is stale too)
    for stale in [
        "shard-0005.cwsx",
        "shard-0009.cwsx",
        "shard-0007.tmp",
        "shard-1.cwsx",
    ] {
        std::fs::write(dir.join(stale), b"leftover garbage").unwrap();
    }
    let summary = write_store(&idx, &dir, 2).unwrap();
    assert_eq!(summary.stale_files_pruned, 4, "all four leftovers swept");
    let mut names: Vec<String> = std::fs::read_dir(&dir)
        .unwrap()
        .map(|e| e.unwrap().file_name().to_string_lossy().into_owned())
        .collect();
    names.sort();
    assert_eq!(
        names,
        vec!["manifest.bin", "shard-0000.cwsx", "shard-0001.cwsx"],
        "directory holds exactly the manifest and its named shards"
    );
    // ...and the store still opens and serves
    let store = ShardedIndex::open(&dir).unwrap();
    assert_eq!(store.shards_total(), 2);
    assert!(store.load_all().is_ok());
    // a clean rewrite reports zero pruned
    assert_eq!(write_store(&idx, &dir, 2).unwrap().stale_files_pruned, 0);
    std::fs::remove_dir_all(&dir).ok();
}

/// A missing shard file surfaces as a clean `Io` error on first touch —
/// open itself stays lazy and cheap.
#[test]
fn missing_shard_file_is_io_error_on_first_touch() {
    let idx = index_from(31, 25, 150, 3);
    let dir = scratch("missing");
    write_store(&idx, &dir, 3).unwrap();
    std::fs::remove_file(dir.join("shard-0001.cwsx")).unwrap();
    let store = ShardedIndex::open(&dir).unwrap(); // lazy: no stat, no error yet
    assert!(store.shard(0).is_ok());
    match store.shard(1) {
        Err(EngineError::Io(_)) => {}
        other => panic!("expected Io error, got {other:?}"),
    }
    assert!(store.shard(2).is_ok());
    std::fs::remove_dir_all(&dir).ok();
}

//! Crash-recovery and equivalence tests for the mutation journal and θ
//! top-up: torn-tail replay over arbitrary truncation points, single-bit
//! flips (final record dropped, interior corruption loud), compaction
//! byte-determinism, and the acceptance bar — a topped-up store answers
//! **bit-identically** to a cold build at the same `(seed, θ)` across
//! coverage, greedy selection, and SP-conditioned views.

use cwelmax_engine::{
    graph_fingerprint, ConditionedView, EngineBuilder, EngineError, IndexBackend, IndexMeta,
    RrIndex,
};
use cwelmax_graph::{generators, Graph, ProbabilityModel as PM};
use cwelmax_rrset::{RrCollection, StandardRr, REGEN_SEED_XOR};
use cwelmax_store::{write_store, FromStore, JournaledStore, JOURNAL_FILE};
use proptest::prelude::*;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// A fresh per-call scratch directory (unique across tests and proptest
/// cases in this process).
fn scratch(tag: &str) -> PathBuf {
    static NEXT: AtomicU64 = AtomicU64::new(0);
    let dir = std::env::temp_dir().join(format!(
        "cwelmax-journal-test-{}-{tag}-{}",
        std::process::id(),
        NEXT.fetch_add(1, Ordering::Relaxed)
    ));
    if dir.exists() {
        std::fs::remove_dir_all(&dir).ok();
    }
    dir
}

fn graph_of(seed: u64, n: usize) -> Graph {
    generators::erdos_renyi(n, n * 4, seed, PM::WeightedCascade)
}

/// A cold index over the **same sampling stream a top-up continues**:
/// set `k` is seeded from `(meta.seed ^ REGEN_SEED_XOR, k)`, so a build
/// at θ₂ is the prefix-extension of a build at θ₁ < θ₂ by construction.
fn cold_index(g: &Graph, seed: u64, theta: usize, cap: u32) -> RrIndex {
    let mut c = RrCollection::new(g.num_nodes());
    c.extend_parallel(g, &StandardRr, theta, seed ^ REGEN_SEED_XOR, 2);
    RrIndex::freeze(
        &c,
        IndexMeta {
            eps: 0.5,
            ell: 1.0,
            seed,
            budget_cap: cap,
            graph_fingerprint: graph_fingerprint(g),
        },
    )
}

/// Write a journaled store holding a cold build at `theta`.
fn store_at(g: &Graph, seed: u64, theta: usize, cap: u32, shards: usize, tag: &str) -> PathBuf {
    let dir = scratch(tag);
    write_store(&cold_index(g, seed, theta, cap), &dir, shards).unwrap();
    dir
}

/// `(start, end)` byte ranges of the complete frames in a journal image
/// (frame = 16-byte header + payload + 4-byte CRC).
fn frame_bounds(bytes: &[u8]) -> Vec<(usize, usize)> {
    let mut out = Vec::new();
    let mut off = 0usize;
    while off + 16 <= bytes.len() {
        let len = u64::from_le_bytes(bytes[off + 8..off + 16].try_into().unwrap()) as usize;
        let end = off + len + 20;
        if end > bytes.len() {
            break;
        }
        out.push((off, end));
        off = end;
    }
    out
}

/// Assert `js` answers bit-identically to the cold-built `want` across
/// every query surface the acceptance bar names: coverage, greedy
/// selection (seeds + coverage bits), the budget-cap pool, and
/// SP-conditioned views.
fn assert_matches_cold(js: &JournaledStore, want: &RrIndex, cap: u32) {
    assert_eq!(js.num_sampled(), want.num_sampled());
    assert_eq!(js.num_sets(), want.num_sets());
    let n = want.num_nodes() as u32;
    let probes: [&[u32]; 4] = [&[], &[0], &[1, 3, 2], &[n - 1, 0, 2]];
    for seeds in probes {
        assert_eq!(
            js.coverage_of(seeds).unwrap().to_bits(),
            want.coverage_of(seeds).to_bits(),
            "coverage diverged for {seeds:?}"
        );
    }
    for b in [1usize, 3, cap as usize] {
        let a = js.greedy_select(b).unwrap();
        let e = want.greedy_select(b);
        assert_eq!(a.seeds, e.seeds, "budget {b}");
        let a_bits: Vec<u64> = a.coverage.iter().map(|x| x.to_bits()).collect();
        let e_bits: Vec<u64> = e.coverage.iter().map(|x| x.to_bits()).collect();
        assert_eq!(a_bits, e_bits, "budget {b}");
    }
    assert_eq!(
        js.pool_at_cap().unwrap(),
        want.greedy_select(cap as usize).seeds
    );
    for sp in [vec![0u32], vec![5, 11], vec![2, 9, 17, 4]] {
        let got = js.derive_conditioned(&sp).unwrap();
        let exp = ConditionedView::derive(want, &sp).unwrap();
        assert_eq!(got.sp_nodes(), exp.sp_nodes());
        assert_eq!(
            got.index().canonical_parts(),
            exp.index().canonical_parts(),
            "conditioned parts diverged for sp {sp:?}"
        );
        assert_eq!(got.pool(), exp.pool(), "conditioned pool for sp {sp:?}");
        assert_eq!(got.removed_sets(), exp.removed_sets());
    }
}

/// The acceptance bar: grow θ 150 → 400 via the journal and compare
/// every surface, live (overlay) and after reopen (replay).
#[test]
fn topup_is_bit_identical_to_a_cold_build_live_and_after_reopen() {
    let (seed, n, cap) = (13u64, 40usize, 5u32);
    let g = graph_of(seed, n);
    let dir = store_at(&g, seed, 150, cap, 4, "identity");
    let cold = cold_index(&g, seed, 400, cap);

    let js = JournaledStore::open(&dir).unwrap();
    assert_eq!(js.num_sampled(), 150);
    assert_eq!(js.ensure_theta(&g, 400).unwrap(), 400);
    assert_eq!(js.journal_records(), 1, "one top-up, one journal record");
    assert!(js.journal_bytes() > 0);
    assert_matches_cold(&js, &cold, cap);

    // already satisfied: a no-op, no new journal record
    assert_eq!(js.ensure_theta(&g, 300).unwrap(), 400);
    assert_eq!(js.journal_records(), 1);

    // a different graph must not be able to extend this journal
    let other = graph_of(seed + 1, n);
    match js.ensure_theta(&other, 500) {
        Err(EngineError::GraphMismatch { .. }) => {}
        other => panic!("expected GraphMismatch, got {other:?}"),
    }

    // reopen: the overlay is rebuilt from the journal, answers identical
    drop(js);
    let js = JournaledStore::open(&dir).unwrap();
    assert_eq!(js.journal_records(), 1);
    assert_matches_cold(&js, &cold, cap);
    std::fs::remove_dir_all(&dir).ok();
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Kill-anywhere durability: truncate the journal at an arbitrary
    /// byte (a torn final write) — reopen recovers exactly the committed
    /// record prefix, physically truncates the tail, and answers
    /// bit-identically to a cold build at the recovered θ.
    #[test]
    fn torn_truncation_recovers_the_committed_prefix(
        seed in 0u64..500,
        cut_frac in 0.0f64..=1.0,
    ) {
        let (n, cap) = (30usize, 4u32);
        let g = graph_of(seed, n);
        let dir = store_at(&g, seed, 80, cap, 3, "torn");
        let js = JournaledStore::open(&dir).unwrap();
        js.ensure_theta(&g, 160).unwrap();
        js.ensure_theta(&g, 240).unwrap();
        drop(js);

        let path = dir.join(JOURNAL_FILE);
        let bytes = std::fs::read(&path).unwrap();
        let frames = frame_bounds(&bytes);
        prop_assert_eq!(frames.len(), 2);
        let cut = (bytes.len() as f64 * cut_frac) as usize;
        std::fs::write(&path, &bytes[..cut.min(bytes.len())]).unwrap();

        let survivors = frames.iter().filter(|&&(_, end)| end <= cut).count();
        let theta = 80 + 80 * survivors;
        let js = JournaledStore::open(&dir).unwrap();
        prop_assert_eq!(js.num_sampled(), theta);
        prop_assert_eq!(js.journal_records(), survivors as u64);
        // the torn tail was physically dropped at open
        let committed = frames.get(survivors.wrapping_sub(1)).map_or(0, |&(_, e)| e);
        prop_assert_eq!(std::fs::metadata(&path).map(|m| m.len()).unwrap_or(0), committed as u64);

        let want = cold_index(&g, seed, theta, cap);
        prop_assert_eq!(
            js.coverage_of(&[0, 2, 5]).unwrap().to_bits(),
            want.coverage_of(&[0, 2, 5]).to_bits()
        );
        prop_assert_eq!(js.greedy_select(3).unwrap().seeds, want.greedy_select(3).seeds);
        std::fs::remove_dir_all(&dir).ok();
    }

    /// Single-bit flips in the journal body: a flip in the FINAL
    /// record's payload/CRC is an interrupted append — dropped, the
    /// committed prefix serves. The same flip in an INTERIOR record is
    /// silent data loss if tolerated, so open fails loudly instead.
    #[test]
    fn bit_flips_drop_the_tail_but_interior_corruption_is_loud(
        seed in 0u64..500,
        pos_frac in 0.0f64..1.0,
        bit in 0u32..8,
        victim_is_final in any::<bool>(),
    ) {
        let (n, cap) = (30usize, 4u32);
        let g = graph_of(seed, n);
        let dir = store_at(&g, seed, 80, cap, 3, "flip");
        let js = JournaledStore::open(&dir).unwrap();
        js.ensure_theta(&g, 160).unwrap();
        js.ensure_theta(&g, 240).unwrap();
        drop(js);

        let path = dir.join(JOURNAL_FILE);
        let mut bytes = std::fs::read(&path).unwrap();
        let frames = frame_bounds(&bytes);
        let (start, end) = frames[if victim_is_final { 1 } else { 0 }];
        // flip past the 16-byte header: the payload or the CRC word
        // (header flips are classified separately — journal.rs unit
        // tests pin magic → Corrupt, version → UnsupportedVersion,
        // oversized length → torn)
        let body = start + 16;
        let pos = body + (((end - body - 1) as f64) * pos_frac) as usize;
        bytes[pos] ^= 1 << bit;
        std::fs::write(&path, &bytes).unwrap();

        if victim_is_final {
            let js = JournaledStore::open(&dir).unwrap();
            prop_assert_eq!(js.num_sampled(), 160, "final record dropped, prefix kept");
            prop_assert_eq!(js.journal_records(), 1);
            let want = cold_index(&g, seed, 160, cap);
            prop_assert_eq!(
                js.coverage_of(&[1, 4]).unwrap().to_bits(),
                want.coverage_of(&[1, 4]).to_bits()
            );
        } else {
            match JournaledStore::open(&dir) {
                Err(EngineError::Corrupt(_)) => {}
                Ok(_) => prop_assert!(false, "interior corruption at {pos} accepted"),
                Err(e) => prop_assert!(false, "unexpected error kind: {e}"),
            }
        }
        std::fs::remove_dir_all(&dir).ok();
    }
}

/// Compaction folds the journal into shards **byte-deterministically**:
/// the compacted directory is file-for-file identical to a cold build of
/// the same `(seed, θ)` written at the same shard count — and keeps
/// answering identically afterwards.
#[test]
fn compaction_is_byte_deterministic_and_answer_identical() {
    let (seed, n, cap, shards) = (29u64, 35usize, 5u32, 3usize);
    let g = graph_of(seed, n);
    let dir = store_at(&g, seed, 100, cap, shards, "compact");
    let js = JournaledStore::open(&dir).unwrap();
    js.ensure_theta(&g, 250).unwrap();
    let summary = js.compact(None).unwrap();
    assert_eq!(summary.shards, shards);
    assert_eq!(js.journal_records(), 0);
    assert_eq!(js.journal_bytes(), 0);
    assert!(
        !dir.join(JOURNAL_FILE).exists(),
        "compaction removes the folded journal"
    );

    // byte-for-byte against a cold build at θ = 250
    let cold = cold_index(&g, seed, 250, cap);
    let cold_dir = scratch("compact-cold");
    write_store(&cold, &cold_dir, shards).unwrap();
    let mut names: Vec<String> = std::fs::read_dir(&dir)
        .unwrap()
        .map(|e| e.unwrap().file_name().into_string().unwrap())
        .collect();
    names.sort();
    assert_eq!(names.len(), shards + 1, "manifest + shards, nothing else");
    for name in &names {
        assert_eq!(
            std::fs::read(dir.join(name)).unwrap(),
            std::fs::read(cold_dir.join(name)).unwrap(),
            "{name} diverged from the cold build"
        );
    }

    // the live handle keeps serving post-compact, still bit-identical
    assert_matches_cold(&js, &cold, cap);
    drop(js);
    let js = JournaledStore::open(&dir).unwrap();
    assert_matches_cold(&js, &cold, cap);
    std::fs::remove_dir_all(&dir).ok();
    std::fs::remove_dir_all(&cold_dir).ok();
}

/// Crash window between compaction's manifest rename and the journal
/// unlink: the leftover journal's records are all ≤ the compacted base θ
/// and must be skipped (and the stale file removed), not re-applied.
#[test]
fn stale_journal_left_by_a_compact_crash_is_skipped() {
    let (seed, n, cap) = (41u64, 30usize, 4u32);
    let g = graph_of(seed, n);
    let dir = store_at(&g, seed, 100, cap, 3, "stale");
    let js = JournaledStore::open(&dir).unwrap();
    js.ensure_theta(&g, 200).unwrap();
    let journal_bytes = std::fs::read(dir.join(JOURNAL_FILE)).unwrap();
    js.compact(None).unwrap();
    drop(js);
    // resurrect the journal exactly as a crash-before-unlink leaves it
    std::fs::write(dir.join(JOURNAL_FILE), &journal_bytes).unwrap();

    let js = JournaledStore::open(&dir).unwrap();
    assert_eq!(js.num_sampled(), 200, "stale records must not re-apply");
    assert_eq!(js.journal_records(), 0);
    assert!(
        !dir.join(JOURNAL_FILE).exists(),
        "a fully stale journal is removed at open"
    );
    assert_matches_cold(&js, &cold_index(&g, seed, 200, cap), cap);
    std::fs::remove_dir_all(&dir).ok();
}

/// Engine integration: a journaled-store engine grows θ live through
/// `CampaignEngine::ensure_theta`, invalidates its pool and conditioned
/// caches, and then answers exactly like an engine cold-built at the
/// target θ. Stats surface the journal counters.
#[test]
fn engine_over_journaled_store_grows_theta_live() {
    use cwelmax_diffusion::Allocation;
    use cwelmax_engine::{CampaignQuery, QueryAlgorithm};
    use cwelmax_utility::configs::{self, TwoItemConfig};

    let (seed, n, cap) = (7u64, 60usize, 6u32);
    let g = Arc::new(graph_of(seed, n));
    let dir = store_at(&g, seed, 300, cap, 4, "engine");
    let cold_dir = scratch("engine-cold");
    write_store(&cold_index(&g, seed, 900, cap), &cold_dir, 4).unwrap();

    let live = EngineBuilder::from_journaled_store(&dir)
        .graph(Arc::clone(&g))
        .build()
        .unwrap();
    let want = EngineBuilder::from_store(&cold_dir)
        .graph(Arc::clone(&g))
        .build()
        .unwrap();

    let fresh = CampaignQuery::new(
        configs::two_item_config(TwoItemConfig::C1),
        vec![2, 2],
        QueryAlgorithm::SeqGrdNm,
    )
    .with_samples(200);
    // prime the pool and a conditioned view at the small θ, so the grow
    // must actually invalidate both
    live.query(&fresh).unwrap();
    let follow = CampaignQuery::new(
        configs::two_item_config(TwoItemConfig::C2),
        vec![2, 2],
        QueryAlgorithm::SeqGrdNm,
    )
    .with_sp(Allocation::from_pairs(vec![(5, 1), (11, 1)]))
    .with_samples(200);
    live.query(&follow).unwrap();

    assert_eq!(live.ensure_theta(900).unwrap(), 900);
    let a = live.query(&fresh).unwrap();
    let b = want.query(&fresh).unwrap();
    assert_eq!(a.allocation, b.allocation);
    assert_eq!(a.welfare, b.welfare);
    let a = live.query(&follow).unwrap();
    let b = want.query(&follow).unwrap();
    assert_eq!(a.allocation, b.allocation);
    assert_eq!(a.welfare, b.welfare);

    let s = live.stats();
    assert_eq!(s.journal_records, 1);
    assert!(s.journal_bytes > 0);
    assert_eq!(s.topups_total, 1);
    // snapshot-backed engines refuse a real deficit instead of lying
    match want.ensure_theta(5_000) {
        Err(EngineError::BadQuery(msg)) => assert!(msg.contains("top-up")),
        other => panic!("expected BadQuery, got {other:?}"),
    }
    std::fs::remove_dir_all(&dir).ok();
    std::fs::remove_dir_all(&cold_dir).ok();
}

/// Satellite: the `store.resident_bytes` gauge tracks decoded shard
/// residency — zero at open, the full on-disk payload once every shard
/// has faulted in.
#[test]
fn resident_bytes_gauge_tracks_lazy_shard_faults() {
    use cwelmax_store::ShardedIndex;
    let (seed, n, cap) = (53u64, 30usize, 4u32);
    let g = graph_of(seed, n);
    let dir = store_at(&g, seed, 200, cap, 4, "resident");
    let store = ShardedIndex::open(&dir).unwrap();
    assert_eq!(store.resident_bytes(), 0, "open faults nothing in");
    let snap = store.metrics().snapshot();
    assert_eq!(snap.gauges["store.resident_bytes"], 0);

    store.shard(1).unwrap();
    let one = store.resident_bytes();
    assert!(one > 0);
    store.coverage_of(&[0]).unwrap();
    // fully faulted = every shard file resident (bytes_on_disk also
    // counts the manifest, which is read eagerly, not lazily resident)
    let shard_bytes: u64 = std::fs::read_dir(&dir)
        .unwrap()
        .map(|e| e.unwrap())
        .filter(|e| e.file_name().to_string_lossy().ends_with(".cwsx"))
        .map(|e| e.metadata().unwrap().len())
        .sum();
    assert!(one < shard_bytes);
    assert_eq!(store.resident_bytes(), shard_bytes);
    assert!(store.resident_bytes() < store.bytes_on_disk());
    assert_eq!(
        store.metrics().snapshot().gauges["store.resident_bytes"],
        shard_bytes as i64
    );
    std::fs::remove_dir_all(&dir).ok();
}

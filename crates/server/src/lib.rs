//! # cwelmax-server
//!
//! A long-lived TCP front-end over one [`CampaignEngine`]: bind the graph
//! and RR-set index **once**, then answer campaign queries from many
//! concurrent connections — the serving shape the engine was built for
//! (`query-batch` re-loads both on every invocation, throwing away exactly
//! the amortization the index exists to provide).
//!
//! The protocol is newline-delimited JSON (`engine::wire`), **versioned
//! per line**: legacy v1 lines (no `"v"` field) are served byte-for-byte
//! as before, `{"v": 2, ...}` lines get versioned responses with
//! structured `{code, kind, message, retryable}` errors, and
//! `{"v": 2, "type": "hello"}` negotiates protocol, features, and server
//! version (the typed `cwelmax-client` does this on connect). Std-only —
//! no HTTP stack, no external dependencies. The request types:
//!
//! * a campaign query (bare object or `{"type": "query", ...}`, fresh or
//!   SP-conditioned via `"sp"`) — answered with the allocation, welfare,
//!   and latency;
//! * `{"type": "batch", "queries": [...]}` — many queries answered over
//!   one wire line (round-trip amortization; per-entry errors);
//! * `{"type": "stats"}` — server request/latency counters plus engine
//!   counters (pool selections, welfare-cache hits, conditioned views, …);
//! * `{"type": "shutdown"}` — graceful stop: in-flight requests finish,
//!   open connections are closed, `run()` returns.
//!
//! Threading model: one acceptor thread (the caller of
//! [`CampaignServer::run`]) plus one thread per connection, all borrowing
//! the shared engine — `CampaignEngine` is `&self`-queryable by
//! construction (immutable index + atomics + mutexed LRU cache), so no
//! request ever blocks another except on the welfare-cache mutex.
//! [`CampaignServer::with_max_conns`] caps concurrent connections:
//! arrivals past the cap get one JSON "server busy" line and a close
//! instead of an unbounded worker thread. Malformed input of any kind is
//! answered with a JSON error line; it never terminates the connection,
//! let alone the process.
//!
//! ```no_run
//! use cwelmax_engine::CampaignEngine;
//! use cwelmax_server::CampaignServer;
//! use std::sync::Arc;
//!
//! # fn demo(engine: CampaignEngine) -> std::io::Result<()> {
//! let server = CampaignServer::bind(Arc::new(engine), "127.0.0.1:7878")?;
//! println!("serving on {}", server.local_addr());
//! let handle = server.handle(); // shut down from another thread
//! server.run()?;               // blocks until shutdown
//! # let _ = handle; Ok(())
//! # }
//! ```

use cwelmax_engine::wire::{self, RequestKind, WireError};
use cwelmax_engine::{CampaignEngine, EngineStats};
use serde::{Map, Serialize, Value};
use std::io::{BufRead, BufReader, BufWriter, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// Point-in-time server counters (monotonic since bind).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ServerStats {
    /// Connections accepted.
    pub connections: u64,
    /// Connections refused because the `--max-conns` limit was reached.
    pub busy_rejections: u64,
    /// Requests parsed off the wire (well-formed or not).
    pub requests: u64,
    /// Campaign queries answered successfully.
    pub queries: u64,
    /// Requests answered with an error response.
    pub errors: u64,
    /// Cumulative request-handling time in nanoseconds (divide by
    /// `requests` for the mean latency).
    pub latency_nanos: u64,
}

/// State shared by the acceptor, every connection thread, and handles.
struct Shared {
    engine: Arc<CampaignEngine>,
    addr: SocketAddr,
    stop: AtomicBool,
    /// Concurrent-connection cap; 0 = unlimited.
    max_conns: AtomicUsize,
    connections: AtomicU64,
    busy_rejections: AtomicU64,
    requests: AtomicU64,
    queries: AtomicU64,
    errors: AtomicU64,
    latency_nanos: AtomicU64,
    /// Clones of live connection streams, so shutdown can unblock their
    /// reader threads; slots are pruned as connections close. The count of
    /// occupied slots is also the live-connection count `--max-conns`
    /// enforces.
    conns: Mutex<Vec<Option<TcpStream>>>,
}

impl Shared {
    fn stats(&self) -> ServerStats {
        ServerStats {
            connections: self.connections.load(Ordering::Relaxed),
            busy_rejections: self.busy_rejections.load(Ordering::Relaxed),
            requests: self.requests.load(Ordering::Relaxed),
            queries: self.queries.load(Ordering::Relaxed),
            errors: self.errors.load(Ordering::Relaxed),
            latency_nanos: self.latency_nanos.load(Ordering::Relaxed),
        }
    }

    /// Flip the stop flag, close every live connection, and poke the
    /// listener so a blocked `accept` returns. Idempotent.
    fn shutdown(&self) {
        if self.stop.swap(true, Ordering::SeqCst) {
            return;
        }
        // close only the read half: blocked reader threads unwind with
        // EOF, but a worker mid-query can still write its response —
        // "in-flight requests finish" is part of the shutdown contract
        for conn in self.conns.lock().unwrap().iter().flatten() {
            let _ = conn.shutdown(Shutdown::Read);
        }
        // wake the acceptor: it re-checks `stop` after every accept
        let _ = TcpStream::connect(self.addr);
    }
}

/// A remote control for a running [`CampaignServer`] — safe to clone into
/// other threads.
#[derive(Clone)]
pub struct ServerHandle {
    shared: Arc<Shared>,
}

impl ServerHandle {
    /// Gracefully stop the server: in-flight requests finish, connections
    /// close, and [`CampaignServer::run`] returns.
    pub fn shutdown(&self) {
        self.shared.shutdown();
    }

    /// The bound address (useful with port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.shared.addr
    }

    /// Server counters snapshot.
    pub fn stats(&self) -> ServerStats {
        self.shared.stats()
    }
}

/// The long-lived query server: one engine, many connections.
pub struct CampaignServer {
    listener: TcpListener,
    shared: Arc<Shared>,
}

impl CampaignServer {
    /// Bind `addr` (e.g. `"127.0.0.1:0"` for an ephemeral port) over a
    /// loaded engine. Binding is cheap; the engine carries all the warm
    /// state.
    pub fn bind(engine: Arc<CampaignEngine>, addr: impl ToSocketAddrs) -> std::io::Result<Self> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        Ok(CampaignServer {
            listener,
            shared: Arc::new(Shared {
                engine,
                addr,
                stop: AtomicBool::new(false),
                max_conns: AtomicUsize::new(0),
                connections: AtomicU64::new(0),
                busy_rejections: AtomicU64::new(0),
                requests: AtomicU64::new(0),
                queries: AtomicU64::new(0),
                errors: AtomicU64::new(0),
                latency_nanos: AtomicU64::new(0),
                conns: Mutex::new(Vec::new()),
            }),
        })
    }

    /// Cap concurrent connections at `n` (0 = unlimited). A connection
    /// arriving at the cap is answered with **one** JSON "server busy"
    /// line and closed instead of getting an unbounded worker thread —
    /// overload sheds load at accept time rather than by thread
    /// exhaustion, and the refusal is machine-readable so clients can
    /// back off and retry.
    pub fn with_max_conns(self, n: usize) -> Self {
        self.shared.max_conns.store(n, Ordering::SeqCst);
        self
    }

    /// The bound address.
    pub fn local_addr(&self) -> SocketAddr {
        self.shared.addr
    }

    /// A clonable handle for shutdown and stats from other threads.
    pub fn handle(&self) -> ServerHandle {
        ServerHandle {
            shared: self.shared.clone(),
        }
    }

    /// Serve until shutdown (via [`ServerHandle::shutdown`] or a
    /// `{"type": "shutdown"}` request). Blocks the calling thread; every
    /// accepted connection gets its own worker thread, all joined before
    /// this returns.
    pub fn run(self) -> std::io::Result<()> {
        let shared = &self.shared;
        std::thread::scope(|scope| {
            for stream in self.listener.incoming() {
                if shared.stop.load(Ordering::SeqCst) {
                    break;
                }
                let stream = match stream {
                    Ok(s) => s,
                    // accept errors (aborted handshake, fd exhaustion)
                    // must not take the server down; back off briefly so
                    // a persistent error cannot busy-spin the acceptor
                    Err(_) => {
                        std::thread::sleep(std::time::Duration::from_millis(10));
                        continue;
                    }
                };
                let slot = match register(shared, &stream) {
                    Registration::Slot(slot) => slot,
                    // at the --max-conns cap: shed load with one clean
                    // JSON refusal instead of an unbounded worker thread
                    Registration::Busy => {
                        shared.busy_rejections.fetch_add(1, Ordering::Relaxed);
                        refuse_busy(shared, stream);
                        continue;
                    }
                    // a connection shutdown cannot reach (clone failure
                    // under fd pressure) would hang the final join —
                    // refuse it
                    Registration::Failed => continue,
                };
                // re-check *after* registering: a shutdown between the
                // check above and `register` has already swept `conns`
                // and would never close this stream
                if shared.stop.load(Ordering::SeqCst) {
                    let _ = stream.shutdown(Shutdown::Both);
                    shared.conns.lock().unwrap()[slot] = None;
                    break;
                }
                shared.connections.fetch_add(1, Ordering::Relaxed);
                scope.spawn(move || {
                    serve_connection(shared, stream);
                    shared.conns.lock().unwrap()[slot] = None;
                });
            }
        });
        Ok(())
    }
}

/// Outcome of trying to admit a new connection.
enum Registration {
    /// Admitted; the slot index in `Shared::conns`.
    Slot(usize),
    /// Refused: the `--max-conns` limit is reached.
    Busy,
    /// The stream could not be cloned (fd pressure) — drop it.
    Failed,
}

/// Park a clone of the stream where `Shared::shutdown` can reach it. The
/// occupancy check and the insertion happen under one lock, so the
/// connection cap cannot be raced past.
fn register(shared: &Shared, stream: &TcpStream) -> Registration {
    let Ok(clone) = stream.try_clone() else {
        return Registration::Failed;
    };
    let mut conns = shared.conns.lock().unwrap();
    let max = shared.max_conns.load(Ordering::SeqCst);
    if max > 0 && conns.iter().flatten().count() >= max {
        return Registration::Busy;
    }
    match conns.iter().position(Option::is_none) {
        Some(i) => {
            conns[i] = Some(clone);
            Registration::Slot(i)
        }
        None => {
            conns.push(Some(clone));
            Registration::Slot(conns.len() - 1)
        }
    }
}

/// Answer an over-limit connection with one JSON error line and close it.
fn refuse_busy(shared: &Shared, stream: TcpStream) {
    let max = shared.max_conns.load(Ordering::SeqCst);
    let mut text = wire::to_line(&wire::error_response(&format!(
        "server busy: connection limit {max} reached, retry later"
    )));
    text.push('\n');
    let mut writer = BufWriter::new(&stream);
    let _ = writer.write_all(text.as_bytes());
    let _ = writer.flush();
    drop(writer);
    let _ = stream.shutdown(Shutdown::Both);
}

/// One connection: read request lines, write response lines, until EOF,
/// an unrecoverable socket error, or shutdown.
fn serve_connection(shared: &Shared, stream: TcpStream) {
    let reader = BufReader::new(match stream.try_clone() {
        Ok(s) => s,
        Err(_) => return,
    });
    let mut writer = BufWriter::new(stream);
    for line in reader.lines() {
        let line = match line {
            Ok(l) => l,
            Err(_) => break, // connection reset / shutdown
        };
        if line.trim().is_empty() {
            continue; // blank keep-alive lines are not requests
        }
        let start = Instant::now();
        let (response, is_shutdown) = handle_line(shared, &line);
        shared.requests.fetch_add(1, Ordering::Relaxed);
        shared
            .latency_nanos
            .fetch_add(start.elapsed().as_nanos() as u64, Ordering::Relaxed);
        let mut text = wire::to_line(&response);
        text.push('\n');
        if writer.write_all(text.as_bytes()).is_err() || writer.flush().is_err() {
            break;
        }
        if is_shutdown {
            shared.shutdown();
            break;
        }
    }
}

/// Answer one request line. Returns the response and whether it was a
/// shutdown request (acted on by the caller *after* the response is
/// written, so the client gets an acknowledgement). The response is
/// encoded in the dialect the request spoke — v1 lines get the exact
/// historical bytes, `"v": 2` lines get versioned responses with
/// structured errors.
fn handle_line(shared: &Shared, line: &str) -> (Value, bool) {
    let request = match wire::parse_request_line(line) {
        Ok(r) => r,
        Err((proto, err)) => {
            shared.errors.fetch_add(1, Ordering::Relaxed);
            return (wire::wire_error_response(&err, proto), false);
        }
    };
    let id = request.id.as_ref();
    let proto = request.proto;
    match request.kind {
        RequestKind::Query(q) => match shared.engine.query(&q) {
            Ok(answer) => {
                shared.queries.fetch_add(1, Ordering::Relaxed);
                (
                    wire::with_id(wire::answer_response(&answer, proto), id),
                    false,
                )
            }
            Err(e) => {
                shared.errors.fetch_add(1, Ordering::Relaxed);
                (
                    wire::with_id(
                        wire::wire_error_response(&WireError::from_engine(&e), proto),
                        id,
                    ),
                    false,
                )
            }
        },
        RequestKind::Batch(entries) => {
            // run the parseable entries through the engine's parallel
            // batch path, then re-interleave with the parse errors so the
            // response is positional
            let runnable: Vec<_> = entries.iter().filter_map(|r| r.clone().ok()).collect();
            let mut answers = shared.engine.query_batch(&runnable, 0).into_iter();
            let rows: Vec<Result<_, WireError>> = entries
                .iter()
                .map(|r| match r {
                    Ok(_) => answers
                        .next()
                        .expect("one answer per runnable query")
                        .map_err(|e| WireError::from_engine(&e)),
                    Err(e) => Err(WireError::bad_request(e.clone())),
                })
                .collect();
            for row in &rows {
                match row {
                    Ok(_) => shared.queries.fetch_add(1, Ordering::Relaxed),
                    Err(_) => shared.errors.fetch_add(1, Ordering::Relaxed),
                };
            }
            (wire::with_id(wire::batch_response(&rows, proto), id), false)
        }
        RequestKind::Stats => (
            wire::with_id(
                wire::with_version(
                    stats_response(&shared.stats(), &shared.engine.stats()),
                    proto,
                ),
                id,
            ),
            false,
        ),
        RequestKind::Hello => (wire::with_id(wire::hello_response(), id), false),
        RequestKind::Shutdown => {
            let mut m = Map::new();
            m.insert("ok".into(), Value::Bool(true));
            m.insert("shutting_down".into(), Value::Bool(true));
            (
                wire::with_id(wire::with_version(Value::Object(m), proto), id),
                true,
            )
        }
    }
}

/// The stats response body: server counters + engine counters.
fn stats_response(server: &ServerStats, engine: &EngineStats) -> Value {
    let mut s = Map::new();
    s.insert("connections".into(), server.connections.to_value());
    s.insert("busy_rejections".into(), server.busy_rejections.to_value());
    s.insert("requests".into(), server.requests.to_value());
    s.insert("queries".into(), server.queries.to_value());
    s.insert("errors".into(), server.errors.to_value());
    let mean_seconds = if server.requests > 0 {
        server.latency_nanos as f64 / server.requests as f64 / 1e9
    } else {
        0.0
    };
    s.insert("mean_latency_seconds".into(), mean_seconds.to_value());
    let mut m = Map::new();
    m.insert("ok".into(), Value::Bool(true));
    m.insert("server".into(), Value::Object(s));
    m.insert("engine".into(), wire::engine_stats_value(engine));
    Value::Object(m)
}

//! # cwelmax-server
//!
//! A long-lived TCP front-end over one [`CampaignEngine`]: bind the graph
//! and RR-set index **once**, then answer campaign queries from many
//! concurrent connections — the serving shape the engine was built for
//! (`query-batch` re-loads both on every invocation, throwing away exactly
//! the amortization the index exists to provide).
//!
//! The protocol is newline-delimited JSON (`engine::wire`), **versioned
//! per line**: legacy v1 lines (no `"v"` field) are served byte-for-byte
//! as before, `{"v": 2, ...}` lines get versioned responses with
//! structured `{code, kind, message, retryable}` errors, and
//! `{"v": 2, "type": "hello"}` negotiates protocol, features, and server
//! version (the typed `cwelmax-client` does this on connect). Std-only —
//! no HTTP stack, no external dependencies. The request types:
//!
//! * a campaign query (bare object or `{"type": "query", ...}`, fresh or
//!   SP-conditioned via `"sp"`) — answered with the allocation, welfare,
//!   and latency;
//! * `{"type": "batch", "queries": [...]}` — many queries answered over
//!   one wire line (round-trip amortization; per-entry errors);
//! * `{"type": "stats"}` — server request/latency counters plus engine
//!   counters (pool selections, welfare-cache hits, conditioned views, …);
//! * `{"type": "shutdown"}` — graceful stop: in-flight requests finish,
//!   open connections are closed, `run()` returns.
//!
//! Threading model: one acceptor thread (the caller of
//! [`CampaignServer::run`]) plus one thread per connection, all borrowing
//! the shared engine — `CampaignEngine` is `&self`-queryable by
//! construction (immutable index + atomics + mutexed LRU cache), so no
//! request ever blocks another except on the welfare-cache mutex.
//! [`CampaignServer::with_max_conns`] caps concurrent connections:
//! arrivals past the cap get one JSON "server busy" line and a close
//! instead of an unbounded worker thread. Malformed input of any kind is
//! answered with a JSON error line; it never terminates the connection,
//! let alone the process.
//!
//! ```no_run
//! use cwelmax_engine::CampaignEngine;
//! use cwelmax_server::CampaignServer;
//! use std::sync::Arc;
//!
//! # fn demo(engine: CampaignEngine) -> std::io::Result<()> {
//! let server = CampaignServer::bind(Arc::new(engine), "127.0.0.1:7878")?;
//! println!("serving on {}", server.local_addr());
//! let handle = server.handle(); // shut down from another thread
//! server.run()?;               // blocks until shutdown
//! # let _ = handle; Ok(())
//! # }
//! ```

use cwelmax_engine::wire::{self, Protocol, RequestKind, WireError};
use cwelmax_engine::{CampaignEngine, EngineStats};
use cwelmax_obs::{
    Counter, Gauge, Histogram, HistogramSnapshot, HistogramWindow, Logger, MetricsRegistry,
    TraceBuffer, TraceCtx, TraceIdGen,
};
use serde::{Map, Serialize, Value};
use std::io::{BufRead, BufReader, BufWriter, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, PoisonError};
use std::time::{Duration, Instant};

/// Default retention capacity of the trace ring (`--trace-buffer`).
pub const DEFAULT_TRACE_BUFFER: usize = 256;

/// How long a busy-refused client should wait before retrying, echoed as
/// `retry_after_ms` on the refusal line. Connection slots free on the
/// order of a request round-trip, so a fixed small hint beats anything
/// derived from load at the refusal instant.
pub const BUSY_RETRY_AFTER_MS: u64 = 100;

/// The sliding latency window v2 stats report percentiles over: 12
/// intervals of 5 s. Lifetime percentiles converge and stop moving on a
/// long-lived server; the windowed pair tracks what the server did in
/// the *last minute*.
const WINDOW_INTERVAL: Duration = Duration::from_secs(5);
const WINDOW_SLOTS: usize = 12;

/// Lock `m`, recovering the guard when a previous holder panicked. The
/// server's mutexes guard a slot vector and an `Arc<Logger>` swap —
/// both valid after any interrupted critical section — and a serving
/// thread must shed a poisoned lock, not propagate the panic
/// (the `no-panic-in-serving` invariant).
fn lock_recover<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Point-in-time server counters (monotonic since bind).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ServerStats {
    /// Connections accepted.
    pub connections: u64,
    /// Connections refused because the `--max-conns` limit was reached.
    pub busy_rejections: u64,
    /// Requests parsed off the wire (well-formed or not).
    pub requests: u64,
    /// Campaign queries answered successfully.
    pub queries: u64,
    /// Requests answered with an error response.
    pub errors: u64,
    /// Cumulative request-handling time in nanoseconds (divide by
    /// `requests` for the mean latency). Derived from the per-type
    /// latency histograms' exact sums — identical arithmetic to the
    /// flat counter it replaced.
    pub latency_nanos: u64,
}

/// The per-request-type latency histograms, `server.request_ns.<type>`
/// in the registry. Handles are fetched once at bind; recording is
/// lock-free.
struct RequestTimers {
    query: Arc<Histogram>,
    batch: Arc<Histogram>,
    stats: Arc<Histogram>,
    hello: Arc<Histogram>,
    metrics: Arc<Histogram>,
    traces: Arc<Histogram>,
    topup: Arc<Histogram>,
    shutdown: Arc<Histogram>,
    /// Lines that never parsed into a request (bad JSON, bad envelope,
    /// unsupported version) — they cost handling time too.
    invalid: Arc<Histogram>,
}

impl RequestTimers {
    fn new(reg: &MetricsRegistry) -> RequestTimers {
        RequestTimers {
            query: reg.histogram("server.request_ns.query"),
            batch: reg.histogram("server.request_ns.batch"),
            stats: reg.histogram("server.request_ns.stats"),
            hello: reg.histogram("server.request_ns.hello"),
            metrics: reg.histogram("server.request_ns.metrics"),
            traces: reg.histogram("server.request_ns.traces"),
            topup: reg.histogram("server.request_ns.topup"),
            shutdown: reg.histogram("server.request_ns.shutdown"),
            invalid: reg.histogram("server.request_ns.invalid"),
        }
    }

    fn of(&self, label: &'static str) -> &Arc<Histogram> {
        match label {
            "query" => &self.query,
            "batch" => &self.batch,
            "stats" => &self.stats,
            "hello" => &self.hello,
            "metrics" => &self.metrics,
            "traces" => &self.traces,
            "topup" => &self.topup,
            "shutdown" => &self.shutdown,
            _ => &self.invalid,
        }
    }

    /// All request types folded into one latency distribution — the
    /// `{"type": "stats"}` percentiles and the mean's exact sum.
    fn aggregate(&self) -> HistogramSnapshot {
        let mut agg = HistogramSnapshot::default();
        for h in [
            &self.query,
            &self.batch,
            &self.stats,
            &self.hello,
            &self.metrics,
            &self.traces,
            &self.topup,
            &self.shutdown,
            &self.invalid,
        ] {
            agg.merge(&h.snapshot());
        }
        agg
    }
}

/// State shared by the acceptor, every connection thread, and handles.
struct Shared {
    engine: Arc<CampaignEngine>,
    addr: SocketAddr,
    stop: AtomicBool,
    /// Concurrent-connection cap; 0 = unlimited.
    max_conns: AtomicUsize,
    /// Structured event log (connection lifecycle, IO errors, slow
    /// queries). Swappable at construction via `with_logger`; the lock
    /// is taken once per connection, not per request.
    log: Mutex<Arc<Logger>>,
    /// Monotonic connection ids for log correlation.
    next_conn_id: AtomicU64,
    connections: Arc<Counter>,
    accept_errors: Arc<Counter>,
    busy_rejections: Arc<Counter>,
    requests: Arc<Counter>,
    queries: Arc<Counter>,
    errors: Arc<Counter>,
    parse_errors: Arc<Counter>,
    open_conns: Arc<Gauge>,
    bytes_read: Arc<Counter>,
    bytes_written: Arc<Counter>,
    request_ns: RequestTimers,
    /// Sliding per-interval baselines over the aggregate latency
    /// histogram, backing the v2 stats `latency_window_*` fields.
    latency_window: HistogramWindow,
    /// Tail-sampled ring of completed request traces. Always present:
    /// with the default rate 0.0 only client-pinned traces are recorded,
    /// so an untraced request costs one atomic load.
    trace_buf: Arc<TraceBuffer>,
    /// Mints server-originated trace ids when `--trace-sample` is on.
    trace_ids: TraceIdGen,
    /// Clones of live connection streams, so shutdown can unblock their
    /// reader threads; slots are pruned as connections close. The count of
    /// occupied slots is also the live-connection count `--max-conns`
    /// enforces.
    conns: Mutex<Vec<Option<TcpStream>>>,
}

impl Shared {
    fn stats(&self) -> ServerStats {
        self.stats_with(&self.request_ns.aggregate())
    }

    fn stats_with(&self, latency: &HistogramSnapshot) -> ServerStats {
        ServerStats {
            connections: self.connections.get(),
            busy_rejections: self.busy_rejections.get(),
            requests: self.requests.get(),
            queries: self.queries.get(),
            errors: self.errors.get(),
            latency_nanos: latency.sum,
        }
    }

    fn logger(&self) -> Arc<Logger> {
        Arc::clone(&lock_recover(&self.log))
    }

    /// Flip the stop flag, close every live connection, and poke the
    /// listener so a blocked `accept` returns. Idempotent.
    fn shutdown(&self) {
        // AcqRel: the swap only elects the one thread that runs the
        // sweep below. The sweep itself synchronizes through the `conns`
        // mutex — a racing `register` either inserts before the sweep
        // (its stream gets closed here) or after the sweep's unlock, in
        // which case the mutex ordering makes this store visible to the
        // acceptor's post-register re-check. No full fence needed.
        if self.stop.swap(true, Ordering::AcqRel) {
            return;
        }
        // close only the read half: blocked reader threads unwind with
        // EOF, but a worker mid-query can still write its response —
        // "in-flight requests finish" is part of the shutdown contract
        for conn in lock_recover(&self.conns).iter().flatten() {
            let _ = conn.shutdown(Shutdown::Read);
        }
        // wake the acceptor: it re-checks `stop` after every accept
        let _ = TcpStream::connect(self.addr);
    }
}

/// A remote control for a running [`CampaignServer`] — safe to clone into
/// other threads.
#[derive(Clone)]
pub struct ServerHandle {
    shared: Arc<Shared>,
}

impl ServerHandle {
    /// Gracefully stop the server: in-flight requests finish, connections
    /// close, and [`CampaignServer::run`] returns.
    pub fn shutdown(&self) {
        self.shared.shutdown();
    }

    /// The bound address (useful with port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.shared.addr
    }

    /// Server counters snapshot.
    pub fn stats(&self) -> ServerStats {
        self.shared.stats()
    }

    /// The metrics registry the server records into (the engine's).
    pub fn metrics(&self) -> Arc<MetricsRegistry> {
        Arc::clone(self.shared.engine.metrics())
    }

    /// The server's tail-sampled trace buffer.
    pub fn trace_buffer(&self) -> Arc<TraceBuffer> {
        Arc::clone(&self.shared.trace_buf)
    }
}

/// The long-lived query server: one engine, many connections.
pub struct CampaignServer {
    listener: TcpListener,
    shared: Arc<Shared>,
}

impl CampaignServer {
    /// Bind `addr` (e.g. `"127.0.0.1:0"` for an ephemeral port) over a
    /// loaded engine. Binding is cheap; the engine carries all the warm
    /// state.
    pub fn bind(engine: Arc<CampaignEngine>, addr: impl ToSocketAddrs) -> std::io::Result<Self> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        // the server records into the engine's registry, so one
        // `{"type": "metrics"}` scrape sees the whole stack
        let reg = Arc::clone(engine.metrics());
        Ok(CampaignServer {
            listener,
            shared: Arc::new(Shared {
                engine,
                addr,
                stop: AtomicBool::new(false),
                max_conns: AtomicUsize::new(0),
                log: Mutex::new(Arc::new(Logger::new(cwelmax_obs::Level::Warn))),
                next_conn_id: AtomicU64::new(0),
                connections: reg.counter("server.connections"),
                accept_errors: reg.counter("server.accept_errors"),
                busy_rejections: reg.counter("server.busy_rejections"),
                requests: reg.counter("server.requests_total"),
                queries: reg.counter("server.queries"),
                errors: reg.counter("server.errors"),
                parse_errors: reg.counter("server.parse_errors"),
                open_conns: reg.gauge("server.open_conns"),
                bytes_read: reg.counter("server.bytes_read"),
                bytes_written: reg.counter("server.bytes_written"),
                request_ns: RequestTimers::new(&reg),
                latency_window: HistogramWindow::new(Instant::now(), WINDOW_INTERVAL, WINDOW_SLOTS),
                trace_buf: Arc::new(TraceBuffer::new(DEFAULT_TRACE_BUFFER)),
                // fixed seed: ids only need to be unique within one
                // server lifetime, and a deterministic stream keeps the
                // sampling decision reproducible across runs
                trace_ids: TraceIdGen::new(0x7261_6365_5F69_6473),
                conns: Mutex::new(Vec::new()),
            }),
        })
    }

    /// Replace the structured logger (default: warn-level to stderr).
    /// Call before [`CampaignServer::run`]; the CLI uses this to apply
    /// `--log-level` and the slow-query threshold. The logger's
    /// slow-query threshold doubles as the trace buffer's "always keep"
    /// rule: a request slow enough to warn about is slow enough to keep
    /// the trace of.
    pub fn with_logger(self, logger: Arc<Logger>) -> Self {
        self.shared.trace_buf.set_slow_ns(logger.slow_query_ns());
        *lock_recover(&self.shared.log) = logger;
        self
    }

    /// Probability of retaining an unremarkable request trace
    /// (`--trace-sample`; default 0.0). Any non-zero rate turns span
    /// recording on for *every* request — tail-based retention needs the
    /// finished trace to decide — while 0.0 records only client-pinned
    /// traces.
    pub fn with_trace_sample(self, rate: f64) -> Self {
        self.shared.trace_buf.set_sample_rate(rate);
        self
    }

    /// Retention capacity of the trace ring (`--trace-buffer`; default
    /// [`DEFAULT_TRACE_BUFFER`], 0 disables retention entirely).
    pub fn with_trace_buffer(self, cap: usize) -> Self {
        self.shared.trace_buf.set_capacity(cap);
        self
    }

    /// The tail-sampled trace buffer (tests and embedders inspect it
    /// directly; the wire surface is `{"v": 2, "type": "traces"}`).
    pub fn trace_buffer(&self) -> Arc<TraceBuffer> {
        Arc::clone(&self.shared.trace_buf)
    }

    /// The metrics registry this server records into (the engine's).
    pub fn metrics(&self) -> Arc<MetricsRegistry> {
        Arc::clone(self.shared.engine.metrics())
    }

    /// Cap concurrent connections at `n` (0 = unlimited). A connection
    /// arriving at the cap is answered with **one** JSON "server busy"
    /// line and closed instead of getting an unbounded worker thread —
    /// overload sheds load at accept time rather than by thread
    /// exhaustion, and the refusal is machine-readable so clients can
    /// back off and retry.
    pub fn with_max_conns(self, n: usize) -> Self {
        // Relaxed: written once here, before `run` spawns any thread
        // (spawn itself is the happens-before edge), and the admission
        // check that enforces the cap reads it under the `conns` mutex.
        self.shared.max_conns.store(n, Ordering::Relaxed);
        self
    }

    /// The bound address.
    pub fn local_addr(&self) -> SocketAddr {
        self.shared.addr
    }

    /// A clonable handle for shutdown and stats from other threads.
    pub fn handle(&self) -> ServerHandle {
        ServerHandle {
            shared: self.shared.clone(),
        }
    }

    /// Serve until shutdown (via [`ServerHandle::shutdown`] or a
    /// `{"type": "shutdown"}` request). Blocks the calling thread; every
    /// accepted connection gets its own worker thread, all joined before
    /// this returns.
    pub fn run(self) -> std::io::Result<()> {
        let shared = &self.shared;
        let log = shared.logger();
        std::thread::scope(|scope| {
            for stream in self.listener.incoming() {
                // Acquire (pairs with the AcqRel swap in `shutdown`):
                // sufficient — the state shutdown mutates is behind the
                // `conns` mutex, the flag itself is the only payload
                if shared.stop.load(Ordering::Acquire) {
                    break;
                }
                let stream = match stream {
                    Ok(s) => s,
                    // accept errors (aborted handshake, fd exhaustion)
                    // must not take the server down; back off briefly so
                    // a persistent error cannot busy-spin the acceptor
                    Err(e) => {
                        shared.accept_errors.incr();
                        log.warn("accept_error", &[("error", e.to_string().to_value())]);
                        std::thread::sleep(std::time::Duration::from_millis(10));
                        continue;
                    }
                };
                let slot = match register(shared, &stream) {
                    Registration::Slot(slot) => slot,
                    // at the --max-conns cap: shed load with one clean
                    // JSON refusal instead of an unbounded worker thread
                    Registration::Busy => {
                        shared.busy_rejections.incr();
                        log.info(
                            "busy_rejection",
                            &[(
                                "max_conns",
                                shared.max_conns.load(Ordering::Relaxed).to_value(),
                            )],
                        );
                        refuse_busy(shared, stream);
                        continue;
                    }
                    // a connection shutdown cannot reach (clone failure
                    // under fd pressure) would hang the final join —
                    // refuse it
                    Registration::Failed => {
                        log.warn("conn_register_failed", &[]);
                        continue;
                    }
                };
                // re-check *after* registering: a shutdown between the
                // check above and `register` has already swept `conns`
                // and would never close this stream. Acquire suffices:
                // `register` took the `conns` mutex after the sweep
                // released it, which orders the sweep's flag store
                // before this load.
                if shared.stop.load(Ordering::Acquire) {
                    let _ = stream.shutdown(Shutdown::Both);
                    lock_recover(&shared.conns)[slot] = None;
                    break;
                }
                shared.connections.incr();
                shared.open_conns.add(1);
                let conn_id = shared.next_conn_id.fetch_add(1, Ordering::Relaxed);
                scope.spawn(move || {
                    serve_connection(shared, stream, conn_id);
                    lock_recover(&shared.conns)[slot] = None;
                    shared.open_conns.sub(1);
                });
            }
        });
        Ok(())
    }
}

/// Outcome of trying to admit a new connection.
enum Registration {
    /// Admitted; the slot index in `Shared::conns`.
    Slot(usize),
    /// Refused: the `--max-conns` limit is reached.
    Busy,
    /// The stream could not be cloned (fd pressure) — drop it.
    Failed,
}

/// Park a clone of the stream where `Shared::shutdown` can reach it. The
/// occupancy check and the insertion happen under one lock, so the
/// connection cap cannot be raced past.
fn register(shared: &Shared, stream: &TcpStream) -> Registration {
    let Ok(clone) = stream.try_clone() else {
        return Registration::Failed;
    };
    let mut conns = lock_recover(&shared.conns);
    // Relaxed: set once before any thread existed; see `with_max_conns`
    let max = shared.max_conns.load(Ordering::Relaxed);
    if max > 0 && conns.iter().flatten().count() >= max {
        return Registration::Busy;
    }
    match conns.iter().position(Option::is_none) {
        Some(i) => {
            conns[i] = Some(clone);
            Registration::Slot(i)
        }
        None => {
            conns.push(Some(clone));
            Registration::Slot(conns.len() - 1)
        }
    }
}

/// Answer an over-limit connection with one JSON error line and close it.
fn refuse_busy(shared: &Shared, stream: TcpStream) {
    // Relaxed: the refusal message only echoes the configured cap
    let max = shared.max_conns.load(Ordering::Relaxed);
    let mut body = wire::error_response(&format!(
        "server busy: connection limit {max} reached, retry later"
    ));
    // machine-readable back-off hint; a top-level key (not inside the
    // error body) keeps the historical `error`/`ok` bytes untouched
    if let Value::Object(m) = &mut body {
        m.insert("retry_after_ms".into(), Value::UInt(BUSY_RETRY_AFTER_MS));
    }
    let mut text = wire::to_line(&body);
    text.push('\n');
    let mut writer = BufWriter::new(&stream);
    let _ = writer.write_all(text.as_bytes());
    let _ = writer.flush();
    drop(writer);
    let _ = stream.shutdown(Shutdown::Both);
}

/// One connection: read request lines, write response lines, until EOF,
/// an unrecoverable socket error, or shutdown.
fn serve_connection(shared: &Shared, stream: TcpStream, conn_id: u64) {
    let log = shared.logger();
    let reader = BufReader::new(match stream.try_clone() {
        Ok(s) => s,
        Err(_) => {
            log.warn("conn_clone_failed", &[("conn", conn_id.to_value())]);
            return;
        }
    });
    log.debug("conn_open", &[("conn", conn_id.to_value())]);
    let mut writer = BufWriter::new(stream);
    let mut req_no = 0u64;
    for line in reader.lines() {
        let line = match line {
            Ok(l) => l,
            Err(e) => {
                // connection reset / shutdown mid-read
                log.warn(
                    "conn_read_error",
                    &[
                        ("conn", conn_id.to_value()),
                        ("error", e.to_string().to_value()),
                    ],
                );
                break;
            }
        };
        // +1 for the newline `lines()` stripped
        shared.bytes_read.add(line.len() as u64 + 1);
        if line.trim().is_empty() {
            continue; // blank keep-alive lines are not requests
        }
        req_no += 1;
        let start = Instant::now();
        let (response, is_shutdown, label) = handle_line(shared, &line);
        let elapsed_ns = u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX);
        shared.requests.incr();
        shared.request_ns.of(label).record(elapsed_ns);
        log.slow(
            elapsed_ns,
            &[
                ("conn", conn_id.to_value()),
                ("req", req_no.to_value()),
                ("request_type", label.to_value()),
            ],
        );
        let mut text = wire::to_line(&response);
        text.push('\n');
        if writer.write_all(text.as_bytes()).is_err() || writer.flush().is_err() {
            log.warn(
                "conn_write_error",
                &[("conn", conn_id.to_value()), ("req", req_no.to_value())],
            );
            break;
        }
        shared.bytes_written.add(text.len() as u64);
        if is_shutdown {
            shared.shutdown();
            break;
        }
    }
    log.debug(
        "conn_closed",
        &[
            ("conn", conn_id.to_value()),
            ("requests", req_no.to_value()),
        ],
    );
}

/// Answer one request line. Returns the response, whether it was a
/// shutdown request (acted on by the caller *after* the response is
/// written, so the client gets an acknowledgement), and the request-type
/// label its latency is recorded under. The response is encoded in the
/// dialect the request spoke — v1 lines get the exact historical bytes,
/// `"v": 2` lines get versioned responses with structured errors.
fn handle_line(shared: &Shared, line: &str) -> (Value, bool, &'static str) {
    let request = match wire::parse_request_line(line) {
        Ok(r) => r,
        Err((proto, err)) => {
            shared.errors.incr();
            shared.parse_errors.incr();
            return (wire::wire_error_response(&err, proto), false, "invalid");
        }
    };
    let id = request.id.as_ref();
    let proto = request.proto;
    match request.kind {
        RequestKind::Query(q) => {
            let ctx = trace_ctx(shared, request.trace);
            let result = {
                let root = ctx.as_ref().map(|c| c.root().span("server.query"));
                let scope = root.as_ref().map(|s| s.scope());
                shared.engine.query_traced(&q, scope)
            };
            let body = match result {
                Ok(answer) => {
                    shared.queries.incr();
                    wire::answer_response(&answer, proto)
                }
                Err(e) => {
                    shared.errors.incr();
                    if let Some(c) = &ctx {
                        c.mark_error();
                    }
                    wire::wire_error_response(&WireError::from_engine(&e), proto)
                }
            };
            let body = wire::with_trace(body, ctx.as_ref().map(TraceCtx::trace_id), proto);
            if let Some(c) = ctx {
                shared.trace_buf.offer(c.finish());
            }
            (wire::with_id(body, id), false, "query")
        }
        RequestKind::Batch(entries) => {
            let ctx = trace_ctx(shared, request.trace);
            // run the parseable entries through the engine's parallel
            // batch path, then re-interleave with the parse errors so the
            // response is positional
            let runnable: Vec<_> = entries.iter().filter_map(|r| r.clone().ok()).collect();
            let batch_answers = {
                let root = ctx.as_ref().map(|c| c.root().span("server.batch"));
                let scope = root.as_ref().map(|s| s.scope());
                shared.engine.query_batch_traced(&runnable, 0, scope)
            };
            let mut answers = batch_answers.into_iter();
            let rows: Vec<Result<_, WireError>> = entries
                .iter()
                .map(|r| match r {
                    Ok(_) => answers
                        .next()
                        // lint:allow(no-panic-in-serving) -- `query_batch` returns exactly one answer per runnable entry by construction
                        .expect("one answer per runnable query")
                        .map_err(|e| WireError::from_engine(&e)),
                    Err(e) => Err(WireError::bad_request(e.clone())),
                })
                .collect();
            for row in &rows {
                match row {
                    Ok(_) => shared.queries.incr(),
                    Err(_) => {
                        shared.errors.incr();
                        if let Some(c) = &ctx {
                            c.mark_error();
                        }
                    }
                };
            }
            let body = wire::with_trace(
                wire::batch_response(&rows, proto),
                ctx.as_ref().map(TraceCtx::trace_id),
                proto,
            );
            if let Some(c) = ctx {
                shared.trace_buf.offer(c.finish());
            }
            (wire::with_id(body, id), false, "batch")
        }
        RequestKind::Stats => {
            let latency = shared.request_ns.aggregate();
            let windowed = shared.latency_window.observe(&latency, Instant::now());
            (
                wire::with_id(
                    wire::with_version(
                        stats_response(
                            &shared.stats_with(&latency),
                            &latency,
                            &windowed,
                            shared.latency_window.window(),
                            &shared.engine.stats(),
                            proto,
                        ),
                        proto,
                    ),
                    id,
                ),
                false,
                "stats",
            )
        }
        RequestKind::Hello => (wire::with_id(wire::hello_response(), id), false, "hello"),
        RequestKind::Metrics => (
            wire::with_id(
                wire::metrics_response(&shared.engine.metrics().snapshot()),
                id,
            ),
            false,
            "metrics",
        ),
        RequestKind::Traces { limit } => {
            let traces: Vec<Value> = shared
                .trace_buf
                .recent(limit)
                .iter()
                .map(|t| t.to_value())
                .collect();
            (
                wire::with_id(wire::traces_response(&traces), id),
                false,
                "traces",
            )
        }
        RequestKind::Topup { theta } => {
            let body = match shared.engine.ensure_theta(theta) {
                Ok(have) => wire::topup_response(have),
                Err(e) => {
                    shared.errors.incr();
                    wire::wire_error_response(&WireError::from_engine(&e), proto)
                }
            };
            (wire::with_id(body, id), false, "topup")
        }
        RequestKind::Shutdown => {
            let mut m = Map::new();
            m.insert("ok".into(), Value::Bool(true));
            m.insert("shutting_down".into(), Value::Bool(true));
            (
                wire::with_id(wire::with_version(Value::Object(m), proto), id),
                true,
                "shutdown",
            )
        }
    }
}

/// Start a trace for one request, if anything will want it: a
/// client-supplied id is always recorded (pinned past sampling — the
/// client asked by name), and a non-zero sample rate records every
/// request so the tail rule can decide at completion. Neither → `None`,
/// and the whole span machinery is skipped.
fn trace_ctx(shared: &Shared, client: Option<u64>) -> Option<TraceCtx> {
    match client {
        Some(id) => Some(TraceCtx::new(id, true)),
        None if shared.trace_buf.sample_rate() > 0.0 => {
            Some(TraceCtx::new(shared.trace_ids.mint(), false))
        }
        None => None,
    }
}

/// The stats response body: server counters + engine counters. The v1
/// body is byte-for-byte what it has always been; v2 adds histogram
/// percentiles of per-request handling time (`latency` aggregates every
/// request type) and their sliding-window counterparts (`windowed`, the
/// last `window` of it).
fn stats_response(
    server: &ServerStats,
    latency: &HistogramSnapshot,
    windowed: &HistogramSnapshot,
    window: Duration,
    engine: &EngineStats,
    proto: Protocol,
) -> Value {
    let mut s = Map::new();
    s.insert("connections".into(), server.connections.to_value());
    s.insert("busy_rejections".into(), server.busy_rejections.to_value());
    s.insert("requests".into(), server.requests.to_value());
    s.insert("queries".into(), server.queries.to_value());
    s.insert("errors".into(), server.errors.to_value());
    let mean_seconds = if server.requests > 0 {
        server.latency_nanos as f64 / server.requests as f64 / 1e9
    } else {
        0.0
    };
    s.insert("mean_latency_seconds".into(), mean_seconds.to_value());
    if proto == Protocol::V2 {
        s.insert("latency_p50_ns".into(), latency.quantile(0.50).to_value());
        s.insert("latency_p99_ns".into(), latency.quantile(0.99).to_value());
        s.insert("latency_max_ns".into(), latency.max.to_value());
        s.insert(
            "latency_window_p50_ns".into(),
            windowed.quantile(0.50).to_value(),
        );
        s.insert(
            "latency_window_p99_ns".into(),
            windowed.quantile(0.99).to_value(),
        );
        s.insert("latency_window_requests".into(), windowed.count.to_value());
        s.insert("latency_window_seconds".into(), window.as_secs().to_value());
    }
    let mut engine_v = wire::engine_stats_value(engine);
    if proto == Protocol::V2 {
        // journal/top-up counters postdate v1, whose engine block is
        // byte-pinned — they ride only on v2 stats
        if let Value::Object(e) = &mut engine_v {
            e.insert("journal_records".into(), engine.journal_records.to_value());
            e.insert("journal_bytes".into(), engine.journal_bytes.to_value());
            e.insert("topups_total".into(), engine.topups_total.to_value());
        }
    }
    let mut m = Map::new();
    m.insert("ok".into(), Value::Bool(true));
    m.insert("server".into(), Value::Object(s));
    m.insert("engine".into(), engine_v);
    Value::Object(m)
}

//! End-to-end tests for `CampaignServer`: real TCP connections against a
//! real engine on a small deterministic graph.

use cwelmax_engine::{CampaignEngine, RrIndex};
use cwelmax_graph::{generators, ProbabilityModel};
use cwelmax_rrset::ImmParams;
use cwelmax_server::{CampaignServer, ServerHandle};
use serde::Value;
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::sync::Arc;

/// A small warm engine: 100-node Erdős–Rényi graph, budget cap 8.
fn engine() -> Arc<CampaignEngine> {
    let graph = Arc::new(generators::erdos_renyi(
        100,
        400,
        7,
        ProbabilityModel::WeightedCascade,
    ));
    let params = ImmParams {
        eps: 0.5,
        ell: 1.0,
        seed: 7,
        threads: 2,
        max_rr_sets: 500_000,
    };
    let index = Arc::new(RrIndex::build(&graph, 8, &params));
    Arc::new(CampaignEngine::new(graph, index).unwrap())
}

/// Start a server on an ephemeral loopback port; returns the handle and
/// the thread running `run()`.
fn start(engine: Arc<CampaignEngine>) -> (ServerHandle, std::thread::JoinHandle<()>) {
    let server = CampaignServer::bind(engine, "127.0.0.1:0").unwrap();
    let handle = server.handle();
    let join = std::thread::spawn(move || server.run().unwrap());
    (handle, join)
}

/// One client connection with line-oriented send/receive.
struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl Client {
    fn connect(handle: &ServerHandle) -> Client {
        let stream = TcpStream::connect(handle.local_addr()).unwrap();
        Client {
            reader: BufReader::new(stream.try_clone().unwrap()),
            writer: stream,
        }
    }

    fn send(&mut self, line: &str) {
        self.writer.write_all(line.as_bytes()).unwrap();
        self.writer.write_all(b"\n").unwrap();
        self.writer.flush().unwrap();
    }

    fn recv(&mut self) -> Value {
        let mut line = String::new();
        let n = self.reader.read_line(&mut line).unwrap();
        assert!(n > 0, "server closed the connection unexpectedly");
        serde_json::from_str(&line).expect("response is valid JSON")
    }

    fn roundtrip(&mut self, line: &str) -> Value {
        self.send(line);
        self.recv()
    }

    /// Probe for a line the server pushed *unprompted* (the busy refusal
    /// is written at accept time): returns it, or `None` if nothing
    /// arrives within a grace window — an admitted connection stays
    /// silent until queried.
    fn try_recv_refusal(&mut self) -> Option<Value> {
        self.reader
            .get_ref()
            .set_read_timeout(Some(std::time::Duration::from_millis(150)))
            .unwrap();
        let mut line = String::new();
        let got = match self.reader.read_line(&mut line) {
            Ok(n) if n > 0 => Some(serde_json::from_str(&line).expect("response is valid JSON")),
            _ => None,
        };
        self.reader.get_ref().set_read_timeout(None).unwrap();
        got
    }
}

fn ok(v: &Value) -> bool {
    v.as_object().unwrap().get("ok") == Some(&Value::Bool(true))
}

fn error_text(v: &Value) -> String {
    match v.as_object().unwrap().get("error") {
        Some(Value::String(s)) => s.clone(),
        other => panic!("expected error string, got {other:?}"),
    }
}

const Q1: &str = r#"{"config": "C1", "budgets": [3, 3], "algorithm": "seqgrd-nm", "samples": 100}"#;
const Q2: &str = r#"{"config": "C2", "budgets": [2, 2], "algorithm": "maxgrd", "samples": 100}"#;

#[test]
fn answers_match_direct_engine_queries_byte_identically() {
    // the server must be a transparent transport: its allocation JSON is
    // exactly what the engine (and hence `query-batch`) produces for the
    // same wire query
    let eng = engine();
    let (handle, join) = start(eng.clone());
    let mut c = Client::connect(&handle);
    for q in [Q1, Q2] {
        let response = c.roundtrip(q);
        assert!(ok(&response), "query failed: {response:?}");
        let parsed =
            cwelmax_engine::wire::parse_query(&serde_json::from_str::<Value>(q).unwrap()).unwrap();
        let direct = eng.query(&parsed).unwrap();
        let direct_json =
            serde_json::to_string(&cwelmax_engine::wire::answer_response(&direct)).unwrap();
        let got = response.as_object().unwrap();
        let want: Value = serde_json::from_str(&direct_json).unwrap();
        let want = want.as_object().unwrap();
        assert_eq!(got.get("allocation"), want.get("allocation"));
        assert_eq!(got.get("algorithm"), want.get("algorithm"));
        assert_eq!(got.get("welfare"), want.get("welfare"));
    }
    handle.shutdown();
    join.join().unwrap();
}

#[test]
fn concurrent_clients_get_correct_independent_answers() {
    let eng = engine();
    // reference answers straight from the engine
    let parse = |q: &str| {
        cwelmax_engine::wire::parse_query(&serde_json::from_str::<Value>(q).unwrap()).unwrap()
    };
    let want1 = eng.query(&parse(Q1)).unwrap().allocation;
    let want2 = eng.query(&parse(Q2)).unwrap().allocation;
    let want1 = serde_json::to_string(&want1.pairs()).unwrap();
    let want2 = serde_json::to_string(&want2.pairs()).unwrap();

    let (handle, join) = start(eng);
    let workers: Vec<_> = (0..8)
        .map(|k| {
            let handle = handle.clone();
            let (q, want) = if k % 2 == 0 {
                (Q1, want1.clone())
            } else {
                (Q2, want2.clone())
            };
            std::thread::spawn(move || {
                let mut c = Client::connect(&handle);
                for _ in 0..5 {
                    let response = c.roundtrip(q);
                    assert!(ok(&response), "{response:?}");
                    let alloc = response.as_object().unwrap().get("allocation").unwrap();
                    assert_eq!(serde_json::to_string(alloc).unwrap(), want);
                }
            })
        })
        .collect();
    for w in workers {
        w.join().unwrap();
    }
    let stats = handle.stats();
    assert_eq!(stats.queries, 40);
    assert_eq!(stats.errors, 0);
    assert_eq!(stats.connections, 8);
    handle.shutdown();
    join.join().unwrap();
}

#[test]
fn malformed_requests_get_error_responses_and_the_connection_survives() {
    let (handle, join) = start(engine());
    let mut c = Client::connect(&handle);

    // malformed JSON
    let r = c.roundtrip("this is { not json");
    assert!(!ok(&r));
    assert!(error_text(&r).contains("bad request JSON"), "{r:?}");

    // unknown algorithm
    let r = c.roundtrip(r#"{"config": "C1", "budgets": [2, 2], "algorithm": "quantum"}"#);
    assert!(!ok(&r));
    assert!(error_text(&r).contains("unknown algorithm"), "{r:?}");

    // budget-length mismatch (C1 is a two-item model) — rejected by the
    // engine, answered as an error, connection still alive
    let r = c.roundtrip(r#"{"config": "C1", "budgets": [2, 2, 2], "samples": 50}"#);
    assert!(!ok(&r));
    assert!(error_text(&r).contains("budgets"), "{r:?}");

    // budget above the index cap
    let r = c.roundtrip(r#"{"config": "C1", "budgets": [50, 50], "samples": 50}"#);
    assert!(!ok(&r));
    assert!(error_text(&r).contains("budget-cap"), "{r:?}");

    // ...and the same connection still answers real queries afterwards
    let r = c.roundtrip(Q1);
    assert!(ok(&r), "{r:?}");

    let stats = handle.stats();
    assert_eq!(stats.errors, 4);
    assert_eq!(stats.queries, 1);
    assert_eq!(stats.requests, 5);
    handle.shutdown();
    join.join().unwrap();
}

#[test]
fn warm_repeat_query_is_served_from_cache() {
    let (handle, join) = start(engine());
    let mut c = Client::connect(&handle);
    let a1 = c.roundtrip(Q1);
    let a2 = c.roundtrip(Q1);
    assert!(ok(&a1) && ok(&a2));
    // identical answers...
    assert_eq!(
        a1.as_object().unwrap().get("allocation"),
        a2.as_object().unwrap().get("allocation")
    );
    assert_eq!(
        a1.as_object().unwrap().get("welfare"),
        a2.as_object().unwrap().get("welfare")
    );
    // ...and the stats request proves the repeat hit the welfare cache
    let stats = c.roundtrip(r#"{"type": "stats"}"#);
    assert!(ok(&stats));
    let engine_stats = stats.as_object().unwrap()["engine"].as_object().unwrap();
    assert_eq!(engine_stats["welfare_evals"], Value::Int(2));
    assert_eq!(engine_stats["welfare_cache_hits"], Value::Int(1));
    let server_stats = stats.as_object().unwrap()["server"].as_object().unwrap();
    assert_eq!(server_stats["queries"], Value::Int(2));
    handle.shutdown();
    join.join().unwrap();
}

#[test]
fn ids_are_echoed_for_pipelined_clients() {
    let (handle, join) = start(engine());
    let mut c = Client::connect(&handle);
    // pipeline two requests before reading anything; ids disambiguate
    c.send(r#"{"type": "query", "id": "first", "config": "C1", "budgets": [2, 2], "samples": 50}"#);
    c.send(
        r#"{"type": "query", "id": "second", "config": "C2", "budgets": [2, 2], "samples": 50}"#,
    );
    let r1 = c.recv();
    let r2 = c.recv();
    assert_eq!(
        r1.as_object().unwrap().get("id"),
        Some(&Value::String("first".into()))
    );
    assert_eq!(
        r2.as_object().unwrap().get("id"),
        Some(&Value::String("second".into()))
    );
    handle.shutdown();
    join.join().unwrap();
}

#[test]
fn batch_envelope_answers_all_queries_on_one_line() {
    let eng = engine();
    // reference answers straight from the engine for the two valid entries
    let parse = |q: &str| {
        cwelmax_engine::wire::parse_query(&serde_json::from_str::<Value>(q).unwrap()).unwrap()
    };
    let want1 = eng.query(&parse(Q1)).unwrap();
    let want2 = eng.query(&parse(Q2)).unwrap();

    let (handle, join) = start(eng);
    let mut c = Client::connect(&handle);
    let line =
        format!(r#"{{"type": "batch", "id": 11, "queries": [{Q1}, {{"budgets": [1]}}, {Q2}]}}"#);
    let r = c.roundtrip(&line);
    assert!(ok(&r), "{r:?}");
    let obj = r.as_object().unwrap();
    assert_eq!(obj.get("id"), Some(&Value::Int(11)));
    let answers = obj.get("answers").unwrap().as_array().unwrap();
    assert_eq!(answers.len(), 3);
    // positional: entry 1 is the parse error, 0 and 2 match direct answers
    for (k, want) in [(0usize, &want1), (2, &want2)] {
        let a = answers[k].as_object().unwrap();
        assert_eq!(a.get("ok"), Some(&Value::Bool(true)), "entry {k}");
        let direct = cwelmax_engine::wire::answer_response(want);
        assert_eq!(
            a.get("allocation"),
            direct.as_object().unwrap().get("allocation")
        );
        assert_eq!(a.get("welfare"), direct.as_object().unwrap().get("welfare"));
    }
    let e = answers[1].as_object().unwrap();
    assert_eq!(e.get("ok"), Some(&Value::Bool(false)));
    assert!(error_text(&answers[1]).contains("query 1"), "{e:?}");
    // the whole batch was one request but counted per-entry
    let stats = handle.stats();
    assert_eq!(stats.requests, 1);
    assert_eq!(stats.queries, 2);
    assert_eq!(stats.errors, 1);
    handle.shutdown();
    join.join().unwrap();
}

#[test]
fn connections_above_max_conns_get_a_busy_refusal() {
    let server = CampaignServer::bind(engine(), "127.0.0.1:0")
        .unwrap()
        .with_max_conns(2);
    let handle = server.handle();
    let join = std::thread::spawn(move || server.run().unwrap());

    // two admitted connections, proven live with a real round-trip each
    let mut a = Client::connect(&handle);
    let mut b = Client::connect(&handle);
    assert!(ok(&a.roundtrip(Q1)));
    assert!(ok(&b.roundtrip(Q2)));

    // the third gets one clean JSON refusal and then EOF
    let mut c = Client::connect(&handle);
    let refusal = c.recv();
    assert!(!ok(&refusal));
    assert!(error_text(&refusal).contains("server busy"), "{refusal:?}");
    let mut line = String::new();
    assert_eq!(c.reader.read_line(&mut line).unwrap(), 0, "must be closed");

    // the admitted connections keep serving...
    assert!(ok(&a.roundtrip(Q1)));
    let stats = handle.stats();
    assert_eq!(stats.busy_rejections, 1);
    assert_eq!(stats.connections, 2);

    // ...and closing one frees a slot for a new client
    drop(b);
    let mut d = loop {
        // the server prunes the slot when its reader thread unwinds;
        // retry until admission succeeds
        let mut d = Client::connect(&handle);
        match d.try_recv_refusal() {
            None => break d,
            Some(_) => std::thread::sleep(std::time::Duration::from_millis(20)),
        }
    };
    assert!(ok(&d.roundtrip(Q2)));
    handle.shutdown();
    join.join().unwrap();
}

#[test]
fn followup_queries_are_served_warm_and_match_fresh_semantics() {
    let eng = engine();
    let (handle, join) = start(eng.clone());
    let mut c = Client::connect(&handle);

    // fresh query, then an SP-conditioned follow-up twice: the second
    // follow-up must hit the conditioned-view cache (asserted via stats)
    let fresh = c.roundtrip(Q1);
    assert!(ok(&fresh), "{fresh:?}");
    let sp_q = r#"{"config": "C1", "budgets": [3, 3], "sp": [[0, 1], [17, 1]], "samples": 100}"#;
    let f1 = c.roundtrip(sp_q);
    let f2 = c.roundtrip(sp_q);
    assert!(ok(&f1) && ok(&f2), "{f1:?} / {f2:?}");
    // identical answers modulo wall-clock time
    for key in ["algorithm", "allocation", "sp", "welfare"] {
        assert_eq!(
            f1.as_object().unwrap().get(key),
            f2.as_object().unwrap().get(key),
            "follow-up repeat diverged on {key}"
        );
    }
    // the response echoes the conditioning allocation
    assert_eq!(
        serde_json::to_string(f1.as_object().unwrap().get("sp").unwrap()).unwrap(),
        "[[0,1],[17,1]]"
    );
    // item 1 is fixed in SP, so only item 0 gets new seeds
    let alloc = f1.as_object().unwrap()["allocation"].as_array().unwrap();
    assert_eq!(alloc.len(), 3);
    for pair in alloc {
        assert_eq!(pair.as_array().unwrap()[1], Value::Int(0));
    }
    // byte-identical to a direct engine answer for the same wire query
    let parsed =
        cwelmax_engine::wire::parse_query(&serde_json::from_str::<Value>(sp_q).unwrap()).unwrap();
    let direct = cwelmax_engine::wire::answer_response(&eng.query(&parsed).unwrap());
    assert_eq!(
        f1.as_object().unwrap().get("allocation"),
        direct.as_object().unwrap().get("allocation")
    );
    assert_eq!(
        f1.as_object().unwrap().get("welfare"),
        direct.as_object().unwrap().get("welfare")
    );

    let stats = c.roundtrip(r#"{"type": "stats"}"#);
    let engine_stats = stats.as_object().unwrap()["engine"].as_object().unwrap();
    assert_eq!(
        engine_stats["conditioned_views"],
        Value::Int(1),
        "one view derivation serves every same-SP follow-up"
    );
    // two server repeats + one direct engine call above = two cache hits
    assert_eq!(engine_stats["conditioned_hits"], Value::Int(2));
    handle.shutdown();
    join.join().unwrap();
}

#[test]
fn store_backed_server_loads_shards_lazily_and_reports_it_in_stats() {
    // the sharded-store serving path, end to end over real TCP: bind an
    // engine whose backend is a lazily loaded store, answer a fresh
    // campaign having loaded *zero* shards (the manifest's persisted
    // pool serves it), then watch a follow-up fault every shard in — all
    // observable through the new store-level stats fields
    let graph = Arc::new(generators::erdos_renyi(
        100,
        400,
        7,
        ProbabilityModel::WeightedCascade,
    ));
    let params = ImmParams {
        eps: 0.5,
        ell: 1.0,
        seed: 7,
        threads: 2,
        max_rr_sets: 500_000,
    };
    let index = RrIndex::build(&graph, 8, &params);
    let dir = std::env::temp_dir().join(format!("cwelmax-server-store-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    cwelmax_store::write_store(&index, &dir, 6).unwrap();
    let store = Arc::new(cwelmax_store::ShardedIndex::open(&dir).unwrap());
    let eng = Arc::new(cwelmax_engine::CampaignEngine::with_backend(graph.clone(), store).unwrap());
    // reference answers from a monolithic-index engine over the same data
    let mono = CampaignEngine::new(graph, Arc::new(index)).unwrap();

    let (handle, join) = start(eng);
    let mut c = Client::connect(&handle);

    // a fresh single-campaign query touches only the shards it needs: none
    let fresh = c.roundtrip(Q1);
    assert!(ok(&fresh), "{fresh:?}");
    let parse = |q: &str| {
        cwelmax_engine::wire::parse_query(&serde_json::from_str::<Value>(q).unwrap()).unwrap()
    };
    let direct = cwelmax_engine::wire::answer_response(&mono.query(&parse(Q1)).unwrap());
    assert_eq!(
        fresh.as_object().unwrap().get("allocation"),
        direct.as_object().unwrap().get("allocation"),
        "store-backed answer must be byte-identical to the monolithic one"
    );
    let stats = c.roundtrip(r#"{"type": "stats"}"#);
    let engine_stats = stats.as_object().unwrap()["engine"].as_object().unwrap();
    assert_eq!(engine_stats["shards_total"], Value::Int(6));
    assert_eq!(
        engine_stats["shards_loaded"],
        Value::Int(0),
        "a fresh campaign is served from the manifest pool: fewer shards \
         loaded than exist — zero, in fact"
    );
    let on_disk = match engine_stats["store_bytes_on_disk"] {
        Value::Int(b) => b,
        Value::UInt(b) => b as i64,
        ref other => panic!("store_bytes_on_disk not a number: {other:?}"),
    };
    assert!(on_disk > 0, "the store footprint is reported");

    // the first SP-conditioned follow-up filters every shard → all loaded
    let sp_q = r#"{"config": "C1", "budgets": [3, 3], "sp": [[0, 1], [17, 1]], "samples": 100}"#;
    let follow = c.roundtrip(sp_q);
    assert!(ok(&follow), "{follow:?}");
    let direct = cwelmax_engine::wire::answer_response(&mono.query(&parse(sp_q)).unwrap());
    assert_eq!(
        follow.as_object().unwrap().get("allocation"),
        direct.as_object().unwrap().get("allocation")
    );
    assert_eq!(
        follow.as_object().unwrap().get("welfare"),
        direct.as_object().unwrap().get("welfare")
    );
    let stats = c.roundtrip(r#"{"type": "stats"}"#);
    let engine_stats = stats.as_object().unwrap()["engine"].as_object().unwrap();
    assert_eq!(engine_stats["shards_loaded"], Value::Int(6));

    handle.shutdown();
    join.join().unwrap();
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn shutdown_request_stops_the_server_gracefully() {
    let (handle, join) = start(engine());
    let mut c = Client::connect(&handle);
    assert!(ok(&c.roundtrip(Q1)));
    let bye = c.roundtrip(r#"{"type": "shutdown"}"#);
    assert!(ok(&bye));
    assert_eq!(
        bye.as_object().unwrap().get("shutting_down"),
        Some(&Value::Bool(true))
    );
    // run() returns; new connections are refused or closed immediately
    join.join().unwrap();
    let refused = match TcpStream::connect(handle.local_addr()) {
        Err(_) => true,
        Ok(s) => {
            // the listener socket is gone, so at best the OS accepts and
            // immediately resets; a read must yield EOF/error
            let mut r = BufReader::new(s);
            let mut line = String::new();
            matches!(r.read_line(&mut line), Ok(0) | Err(_))
        }
    };
    assert!(refused, "server still serving after shutdown");
}

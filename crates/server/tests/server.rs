//! End-to-end tests for `CampaignServer`: real TCP connections against a
//! real engine on a small deterministic graph.

use cwelmax_engine::wire::Protocol;
use cwelmax_engine::{CampaignEngine, EngineBuilder, RrIndex};
use cwelmax_graph::{generators, ProbabilityModel};
use cwelmax_rrset::ImmParams;
use cwelmax_server::{CampaignServer, ServerHandle};
use serde::Value;
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::sync::Arc;

/// A small warm engine: 100-node Erdős–Rényi graph, budget cap 8.
fn engine() -> Arc<CampaignEngine> {
    let graph = Arc::new(generators::erdos_renyi(
        100,
        400,
        7,
        ProbabilityModel::WeightedCascade,
    ));
    let params = ImmParams {
        eps: 0.5,
        ell: 1.0,
        seed: 7,
        threads: 2,
        max_rr_sets: 500_000,
    };
    let index = Arc::new(RrIndex::build(&graph, 8, &params));
    Arc::new(
        EngineBuilder::from_index(index)
            .graph(graph)
            .build()
            .unwrap(),
    )
}

/// Start a server on an ephemeral loopback port; returns the handle and
/// the thread running `run()`.
fn start(engine: Arc<CampaignEngine>) -> (ServerHandle, std::thread::JoinHandle<()>) {
    let server = CampaignServer::bind(engine, "127.0.0.1:0").unwrap();
    let handle = server.handle();
    let join = std::thread::spawn(move || server.run().unwrap());
    (handle, join)
}

/// One client connection with line-oriented send/receive.
struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl Client {
    fn connect(handle: &ServerHandle) -> Client {
        let stream = TcpStream::connect(handle.local_addr()).unwrap();
        Client {
            reader: BufReader::new(stream.try_clone().unwrap()),
            writer: stream,
        }
    }

    fn send(&mut self, line: &str) {
        self.writer.write_all(line.as_bytes()).unwrap();
        self.writer.write_all(b"\n").unwrap();
        self.writer.flush().unwrap();
    }

    fn recv(&mut self) -> Value {
        let mut line = String::new();
        let n = self.reader.read_line(&mut line).unwrap();
        assert!(n > 0, "server closed the connection unexpectedly");
        serde_json::from_str(&line).expect("response is valid JSON")
    }

    fn roundtrip(&mut self, line: &str) -> Value {
        self.send(line);
        self.recv()
    }

    /// Probe for a line the server pushed *unprompted* (the busy refusal
    /// is written at accept time): returns it, or `None` if nothing
    /// arrives within a grace window — an admitted connection stays
    /// silent until queried.
    fn try_recv_refusal(&mut self) -> Option<Value> {
        self.reader
            .get_ref()
            .set_read_timeout(Some(std::time::Duration::from_millis(150)))
            .unwrap();
        let mut line = String::new();
        let got = match self.reader.read_line(&mut line) {
            Ok(n) if n > 0 => Some(serde_json::from_str(&line).expect("response is valid JSON")),
            _ => None,
        };
        self.reader.get_ref().set_read_timeout(None).unwrap();
        got
    }
}

fn ok(v: &Value) -> bool {
    v.as_object().unwrap().get("ok") == Some(&Value::Bool(true))
}

/// A parsed JSON number as u64 (the shim parses literals as `Int`, the
/// wire emits `UInt`; responses that round-tripped compare numerically).
fn uint(v: Option<&Value>) -> Option<u64> {
    match v {
        Some(Value::UInt(x)) => Some(*x),
        Some(Value::Int(x)) if *x >= 0 => Some(*x as u64),
        _ => None,
    }
}

fn error_text(v: &Value) -> String {
    match v.as_object().unwrap().get("error") {
        Some(Value::String(s)) => s.clone(),
        other => panic!("expected error string, got {other:?}"),
    }
}

const Q1: &str = r#"{"config": "C1", "budgets": [3, 3], "algorithm": "seqgrd-nm", "samples": 100}"#;
const Q2: &str = r#"{"config": "C2", "budgets": [2, 2], "algorithm": "maxgrd", "samples": 100}"#;

#[test]
fn answers_match_direct_engine_queries_byte_identically() {
    // the server must be a transparent transport: its allocation JSON is
    // exactly what the engine (and hence `query-batch`) produces for the
    // same wire query
    let eng = engine();
    let (handle, join) = start(eng.clone());
    let mut c = Client::connect(&handle);
    for q in [Q1, Q2] {
        let response = c.roundtrip(q);
        assert!(ok(&response), "query failed: {response:?}");
        let parsed =
            cwelmax_engine::wire::parse_query(&serde_json::from_str::<Value>(q).unwrap()).unwrap();
        let direct = eng.query(&parsed).unwrap();
        let direct_json = serde_json::to_string(&cwelmax_engine::wire::answer_response(
            &direct,
            Protocol::V1,
        ))
        .unwrap();
        let got = response.as_object().unwrap();
        let want: Value = serde_json::from_str(&direct_json).unwrap();
        let want = want.as_object().unwrap();
        assert_eq!(got.get("allocation"), want.get("allocation"));
        assert_eq!(got.get("algorithm"), want.get("algorithm"));
        assert_eq!(got.get("welfare"), want.get("welfare"));
    }
    handle.shutdown();
    join.join().unwrap();
}

#[test]
fn concurrent_clients_get_correct_independent_answers() {
    let eng = engine();
    // reference answers straight from the engine
    let parse = |q: &str| {
        cwelmax_engine::wire::parse_query(&serde_json::from_str::<Value>(q).unwrap()).unwrap()
    };
    let want1 = eng.query(&parse(Q1)).unwrap().allocation;
    let want2 = eng.query(&parse(Q2)).unwrap().allocation;
    let want1 = serde_json::to_string(&want1.pairs()).unwrap();
    let want2 = serde_json::to_string(&want2.pairs()).unwrap();

    let (handle, join) = start(eng);
    let workers: Vec<_> = (0..8)
        .map(|k| {
            let handle = handle.clone();
            let (q, want) = if k % 2 == 0 {
                (Q1, want1.clone())
            } else {
                (Q2, want2.clone())
            };
            std::thread::spawn(move || {
                let mut c = Client::connect(&handle);
                for _ in 0..5 {
                    let response = c.roundtrip(q);
                    assert!(ok(&response), "{response:?}");
                    let alloc = response.as_object().unwrap().get("allocation").unwrap();
                    assert_eq!(serde_json::to_string(alloc).unwrap(), want);
                }
            })
        })
        .collect();
    for w in workers {
        w.join().unwrap();
    }
    let stats = handle.stats();
    assert_eq!(stats.queries, 40);
    assert_eq!(stats.errors, 0);
    assert_eq!(stats.connections, 8);
    handle.shutdown();
    join.join().unwrap();
}

#[test]
fn malformed_requests_get_error_responses_and_the_connection_survives() {
    let (handle, join) = start(engine());
    let mut c = Client::connect(&handle);

    // malformed JSON
    let r = c.roundtrip("this is { not json");
    assert!(!ok(&r));
    assert!(error_text(&r).contains("bad request JSON"), "{r:?}");

    // unknown algorithm
    let r = c.roundtrip(r#"{"config": "C1", "budgets": [2, 2], "algorithm": "quantum"}"#);
    assert!(!ok(&r));
    assert!(error_text(&r).contains("unknown algorithm"), "{r:?}");

    // budget-length mismatch (C1 is a two-item model) — rejected by the
    // engine, answered as an error, connection still alive
    let r = c.roundtrip(r#"{"config": "C1", "budgets": [2, 2, 2], "samples": 50}"#);
    assert!(!ok(&r));
    assert!(error_text(&r).contains("budgets"), "{r:?}");

    // budget above the index cap
    let r = c.roundtrip(r#"{"config": "C1", "budgets": [50, 50], "samples": 50}"#);
    assert!(!ok(&r));
    assert!(error_text(&r).contains("budget-cap"), "{r:?}");

    // ...and the same connection still answers real queries afterwards
    let r = c.roundtrip(Q1);
    assert!(ok(&r), "{r:?}");

    let stats = handle.stats();
    assert_eq!(stats.errors, 4);
    assert_eq!(stats.queries, 1);
    assert_eq!(stats.requests, 5);
    handle.shutdown();
    join.join().unwrap();
}

#[test]
fn warm_repeat_query_is_served_from_cache() {
    let (handle, join) = start(engine());
    let mut c = Client::connect(&handle);
    let a1 = c.roundtrip(Q1);
    let a2 = c.roundtrip(Q1);
    assert!(ok(&a1) && ok(&a2));
    // identical answers...
    assert_eq!(
        a1.as_object().unwrap().get("allocation"),
        a2.as_object().unwrap().get("allocation")
    );
    assert_eq!(
        a1.as_object().unwrap().get("welfare"),
        a2.as_object().unwrap().get("welfare")
    );
    // ...and the stats request proves the repeat hit the welfare cache
    let stats = c.roundtrip(r#"{"type": "stats"}"#);
    assert!(ok(&stats));
    let engine_stats = stats.as_object().unwrap()["engine"].as_object().unwrap();
    assert_eq!(engine_stats["welfare_evals"], Value::Int(2));
    assert_eq!(engine_stats["welfare_cache_hits"], Value::Int(1));
    let server_stats = stats.as_object().unwrap()["server"].as_object().unwrap();
    assert_eq!(server_stats["queries"], Value::Int(2));
    handle.shutdown();
    join.join().unwrap();
}

#[test]
fn ids_are_echoed_for_pipelined_clients() {
    let (handle, join) = start(engine());
    let mut c = Client::connect(&handle);
    // pipeline two requests before reading anything; ids disambiguate
    c.send(r#"{"type": "query", "id": "first", "config": "C1", "budgets": [2, 2], "samples": 50}"#);
    c.send(
        r#"{"type": "query", "id": "second", "config": "C2", "budgets": [2, 2], "samples": 50}"#,
    );
    let r1 = c.recv();
    let r2 = c.recv();
    assert_eq!(
        r1.as_object().unwrap().get("id"),
        Some(&Value::String("first".into()))
    );
    assert_eq!(
        r2.as_object().unwrap().get("id"),
        Some(&Value::String("second".into()))
    );
    handle.shutdown();
    join.join().unwrap();
}

#[test]
fn batch_envelope_answers_all_queries_on_one_line() {
    let eng = engine();
    // reference answers straight from the engine for the two valid entries
    let parse = |q: &str| {
        cwelmax_engine::wire::parse_query(&serde_json::from_str::<Value>(q).unwrap()).unwrap()
    };
    let want1 = eng.query(&parse(Q1)).unwrap();
    let want2 = eng.query(&parse(Q2)).unwrap();

    let (handle, join) = start(eng);
    let mut c = Client::connect(&handle);
    let line =
        format!(r#"{{"type": "batch", "id": 11, "queries": [{Q1}, {{"budgets": [1]}}, {Q2}]}}"#);
    let r = c.roundtrip(&line);
    assert!(ok(&r), "{r:?}");
    let obj = r.as_object().unwrap();
    assert_eq!(obj.get("id"), Some(&Value::Int(11)));
    let answers = obj.get("answers").unwrap().as_array().unwrap();
    assert_eq!(answers.len(), 3);
    // positional: entry 1 is the parse error, 0 and 2 match direct answers
    for (k, want) in [(0usize, &want1), (2, &want2)] {
        let a = answers[k].as_object().unwrap();
        assert_eq!(a.get("ok"), Some(&Value::Bool(true)), "entry {k}");
        let direct = cwelmax_engine::wire::answer_response(want, Protocol::V1);
        assert_eq!(
            a.get("allocation"),
            direct.as_object().unwrap().get("allocation")
        );
        assert_eq!(a.get("welfare"), direct.as_object().unwrap().get("welfare"));
    }
    let e = answers[1].as_object().unwrap();
    assert_eq!(e.get("ok"), Some(&Value::Bool(false)));
    assert!(error_text(&answers[1]).contains("query 1"), "{e:?}");
    // the whole batch was one request but counted per-entry
    let stats = handle.stats();
    assert_eq!(stats.requests, 1);
    assert_eq!(stats.queries, 2);
    assert_eq!(stats.errors, 1);
    handle.shutdown();
    join.join().unwrap();
}

#[test]
fn connections_above_max_conns_get_a_busy_refusal() {
    let server = CampaignServer::bind(engine(), "127.0.0.1:0")
        .unwrap()
        .with_max_conns(2);
    let handle = server.handle();
    let join = std::thread::spawn(move || server.run().unwrap());

    // two admitted connections, proven live with a real round-trip each
    let mut a = Client::connect(&handle);
    let mut b = Client::connect(&handle);
    assert!(ok(&a.roundtrip(Q1)));
    assert!(ok(&b.roundtrip(Q2)));

    // the third gets one clean JSON refusal and then EOF
    let mut c = Client::connect(&handle);
    let refusal = c.recv();
    assert!(!ok(&refusal));
    assert!(error_text(&refusal).contains("server busy"), "{refusal:?}");
    // the refusal carries a machine-readable back-off hint
    assert_eq!(
        uint(refusal.as_object().unwrap().get("retry_after_ms")),
        Some(cwelmax_server::BUSY_RETRY_AFTER_MS),
        "{refusal:?}"
    );
    let mut line = String::new();
    assert_eq!(c.reader.read_line(&mut line).unwrap(), 0, "must be closed");

    // the admitted connections keep serving...
    assert!(ok(&a.roundtrip(Q1)));
    let stats = handle.stats();
    assert_eq!(stats.busy_rejections, 1);
    assert_eq!(stats.connections, 2);

    // ...and closing one frees a slot for a new client
    drop(b);
    let mut d = loop {
        // the server prunes the slot when its reader thread unwinds;
        // retry until admission succeeds
        let mut d = Client::connect(&handle);
        match d.try_recv_refusal() {
            None => break d,
            Some(_) => std::thread::sleep(std::time::Duration::from_millis(20)),
        }
    };
    assert!(ok(&d.roundtrip(Q2)));
    handle.shutdown();
    join.join().unwrap();
}

#[test]
fn followup_queries_are_served_warm_and_match_fresh_semantics() {
    let eng = engine();
    let (handle, join) = start(eng.clone());
    let mut c = Client::connect(&handle);

    // fresh query, then an SP-conditioned follow-up twice: the second
    // follow-up must hit the conditioned-view cache (asserted via stats)
    let fresh = c.roundtrip(Q1);
    assert!(ok(&fresh), "{fresh:?}");
    let sp_q = r#"{"config": "C1", "budgets": [3, 3], "sp": [[0, 1], [17, 1]], "samples": 100}"#;
    let f1 = c.roundtrip(sp_q);
    let f2 = c.roundtrip(sp_q);
    assert!(ok(&f1) && ok(&f2), "{f1:?} / {f2:?}");
    // identical answers modulo wall-clock time
    for key in ["algorithm", "allocation", "sp", "welfare"] {
        assert_eq!(
            f1.as_object().unwrap().get(key),
            f2.as_object().unwrap().get(key),
            "follow-up repeat diverged on {key}"
        );
    }
    // the response echoes the conditioning allocation
    assert_eq!(
        serde_json::to_string(f1.as_object().unwrap().get("sp").unwrap()).unwrap(),
        "[[0,1],[17,1]]"
    );
    // item 1 is fixed in SP, so only item 0 gets new seeds
    let alloc = f1.as_object().unwrap()["allocation"].as_array().unwrap();
    assert_eq!(alloc.len(), 3);
    for pair in alloc {
        assert_eq!(pair.as_array().unwrap()[1], Value::Int(0));
    }
    // byte-identical to a direct engine answer for the same wire query
    let parsed =
        cwelmax_engine::wire::parse_query(&serde_json::from_str::<Value>(sp_q).unwrap()).unwrap();
    let direct = cwelmax_engine::wire::answer_response(&eng.query(&parsed).unwrap(), Protocol::V1);
    assert_eq!(
        f1.as_object().unwrap().get("allocation"),
        direct.as_object().unwrap().get("allocation")
    );
    assert_eq!(
        f1.as_object().unwrap().get("welfare"),
        direct.as_object().unwrap().get("welfare")
    );

    let stats = c.roundtrip(r#"{"type": "stats"}"#);
    let engine_stats = stats.as_object().unwrap()["engine"].as_object().unwrap();
    assert_eq!(
        engine_stats["conditioned_views"],
        Value::Int(1),
        "one view derivation serves every same-SP follow-up"
    );
    // two server repeats + one direct engine call above = two cache hits
    assert_eq!(engine_stats["conditioned_hits"], Value::Int(2));
    handle.shutdown();
    join.join().unwrap();
}

#[test]
fn store_backed_server_loads_shards_lazily_and_reports_it_in_stats() {
    // the sharded-store serving path, end to end over real TCP: bind an
    // engine whose backend is a lazily loaded store, answer a fresh
    // campaign having loaded *zero* shards (the manifest's persisted
    // pool serves it), then watch a follow-up fault every shard in — all
    // observable through the new store-level stats fields
    let graph = Arc::new(generators::erdos_renyi(
        100,
        400,
        7,
        ProbabilityModel::WeightedCascade,
    ));
    let params = ImmParams {
        eps: 0.5,
        ell: 1.0,
        seed: 7,
        threads: 2,
        max_rr_sets: 500_000,
    };
    let index = RrIndex::build(&graph, 8, &params);
    let dir = std::env::temp_dir().join(format!("cwelmax-server-store-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    cwelmax_store::write_store(&index, &dir, 6).unwrap();
    let store = Arc::new(cwelmax_store::ShardedIndex::open(&dir).unwrap());
    let eng = Arc::new(
        EngineBuilder::from_backend(store)
            .graph(graph.clone())
            .build()
            .unwrap(),
    );
    // reference answers from a monolithic-index engine over the same data
    let mono = EngineBuilder::from_index(Arc::new(index))
        .graph(graph)
        .build()
        .unwrap();

    let (handle, join) = start(eng);
    let mut c = Client::connect(&handle);

    // a fresh single-campaign query touches only the shards it needs: none
    let fresh = c.roundtrip(Q1);
    assert!(ok(&fresh), "{fresh:?}");
    let parse = |q: &str| {
        cwelmax_engine::wire::parse_query(&serde_json::from_str::<Value>(q).unwrap()).unwrap()
    };
    let direct =
        cwelmax_engine::wire::answer_response(&mono.query(&parse(Q1)).unwrap(), Protocol::V1);
    assert_eq!(
        fresh.as_object().unwrap().get("allocation"),
        direct.as_object().unwrap().get("allocation"),
        "store-backed answer must be byte-identical to the monolithic one"
    );
    let stats = c.roundtrip(r#"{"type": "stats"}"#);
    let engine_stats = stats.as_object().unwrap()["engine"].as_object().unwrap();
    assert_eq!(engine_stats["shards_total"], Value::Int(6));
    assert_eq!(
        engine_stats["shards_loaded"],
        Value::Int(0),
        "a fresh campaign is served from the manifest pool: fewer shards \
         loaded than exist — zero, in fact"
    );
    let on_disk = match engine_stats["store_bytes_on_disk"] {
        Value::Int(b) => b,
        Value::UInt(b) => b as i64,
        ref other => panic!("store_bytes_on_disk not a number: {other:?}"),
    };
    assert!(on_disk > 0, "the store footprint is reported");

    // the first SP-conditioned follow-up filters every shard → all loaded
    let sp_q = r#"{"config": "C1", "budgets": [3, 3], "sp": [[0, 1], [17, 1]], "samples": 100}"#;
    let follow = c.roundtrip(sp_q);
    assert!(ok(&follow), "{follow:?}");
    let direct =
        cwelmax_engine::wire::answer_response(&mono.query(&parse(sp_q)).unwrap(), Protocol::V1);
    assert_eq!(
        follow.as_object().unwrap().get("allocation"),
        direct.as_object().unwrap().get("allocation")
    );
    assert_eq!(
        follow.as_object().unwrap().get("welfare"),
        direct.as_object().unwrap().get("welfare")
    );
    let stats = c.roundtrip(r#"{"type": "stats"}"#);
    let engine_stats = stats.as_object().unwrap()["engine"].as_object().unwrap();
    assert_eq!(engine_stats["shards_loaded"], Value::Int(6));

    handle.shutdown();
    join.join().unwrap();
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn topup_request_grows_theta_live_and_reports_journal_stats() {
    // live index mutation over the wire: a journaled-store-backed server
    // accepts {"v": 2, "type": "topup"}, grows θ without a restart, and
    // surfaces the journal counters in v2 stats (v1 stats stay pinned)
    let graph = Arc::new(generators::erdos_renyi(
        100,
        400,
        7,
        ProbabilityModel::WeightedCascade,
    ));
    let params = ImmParams {
        eps: 0.5,
        ell: 1.0,
        seed: 7,
        threads: 2,
        max_rr_sets: 500_000,
    };
    let index = RrIndex::build(&graph, 8, &params);
    let theta0 = index.num_sampled();
    let dir = std::env::temp_dir().join(format!("cwelmax-server-topup-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    cwelmax_store::write_store(&index, &dir, 4).unwrap();
    let store = Arc::new(cwelmax_store::JournaledStore::open(&dir).unwrap());
    let eng = Arc::new(
        EngineBuilder::from_backend(store)
            .graph(graph)
            .build()
            .unwrap(),
    );
    let (handle, join) = start(eng);
    let mut c = Client::connect(&handle);

    // hello advertises the capability, appended last
    let hello = c.roundtrip(r#"{"v": 2, "type": "hello"}"#);
    let features = hello.as_object().unwrap()["features"].as_array().unwrap();
    assert_eq!(features.last().and_then(|f| f.as_str()), Some("topup"));

    // v2 stats before: a journaled backend with an empty journal
    let stats = c.roundtrip(r#"{"v": 2, "type": "stats"}"#);
    let engine_stats = stats.as_object().unwrap()["engine"].as_object().unwrap();
    assert_eq!(uint(engine_stats.get("journal_records")), Some(0));
    assert_eq!(uint(engine_stats.get("topups_total")), Some(0));

    // grow θ live; the response reports the resulting population
    let target = theta0 + 400;
    let grown = c.roundtrip(&format!(
        r#"{{"v": 2, "type": "topup", "theta": {target}}}"#
    ));
    assert!(ok(&grown), "{grown:?}");
    assert_eq!(
        uint(grown.as_object().unwrap().get("theta")),
        Some(target as u64)
    );
    // an already-satisfied target is a cheap no-op, not an error
    let noop = c.roundtrip(r#"{"v": 2, "type": "topup", "theta": 1}"#);
    assert!(ok(&noop), "{noop:?}");
    assert_eq!(
        uint(noop.as_object().unwrap().get("theta")),
        Some(target as u64)
    );

    // v2 stats after: one journal record, one top-up, bytes on disk
    let stats = c.roundtrip(r#"{"v": 2, "type": "stats"}"#);
    let engine_stats = stats.as_object().unwrap()["engine"].as_object().unwrap();
    assert_eq!(uint(engine_stats.get("journal_records")), Some(1));
    assert_eq!(uint(engine_stats.get("topups_total")), Some(1));
    assert!(uint(engine_stats.get("journal_bytes")).unwrap() > 0);

    // the v1 stats block is byte-pinned: no journal keys leak into it
    let stats = c.roundtrip(r#"{"type": "stats"}"#);
    let engine_stats = stats.as_object().unwrap()["engine"].as_object().unwrap();
    assert!(engine_stats.get("journal_records").is_none());
    assert!(engine_stats.get("topups_total").is_none());

    // topup does not exist in the v1 dialect — exact legacy error bytes
    c.send(r#"{"type": "topup", "theta": 5}"#);
    let mut line = String::new();
    c.reader.read_line(&mut line).unwrap();
    assert_eq!(
        line.trim_end(),
        r#"{"error":"unknown request type `topup`","ok":false}"#
    );

    // the grown index keeps answering queries on the same connection
    assert!(ok(&c.roundtrip(Q1)));
    handle.shutdown();
    join.join().unwrap();
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn v1_transcript_replays_byte_identically_against_the_v2_server() {
    // the compatibility acceptance bar: a recorded v1 session (the lines
    // this suite has always sent) replayed against the v2-speaking
    // server yields byte-identical response lines — no `v` key, error
    // strings verbatim, answers exactly `wire::answer_response` v1 bytes
    let eng = engine();
    let (handle, join) = start(eng.clone());
    let mut c = Client::connect(&handle);
    let parse = |q: &str| {
        cwelmax_engine::wire::parse_query(&serde_json::from_str::<Value>(q).unwrap()).unwrap()
    };

    // deterministic answers: expected line = the v1 encoder over the
    // direct engine answer
    for q in [Q1, Q2] {
        c.send(q);
        let mut line = String::new();
        c.reader.read_line(&mut line).unwrap();
        let direct = eng.query(&parse(q)).unwrap();
        let want = cwelmax_engine::wire::to_line(&cwelmax_engine::wire::answer_response(
            &direct,
            Protocol::V1,
        ));
        // elapsed_seconds differs per run; compare with it normalized
        let strip = |s: &str| {
            let v: Value = serde_json::from_str(s).unwrap();
            let mut m = v.as_object().unwrap().clone();
            m.remove("elapsed_seconds").expect("elapsed present");
            serde_json::to_string(&Value::Object(m)).unwrap()
        };
        assert_eq!(strip(line.trim_end()), strip(&want), "for {q}");
        assert!(
            !line.contains("\"v\""),
            "v1 response must carry no v: {line}"
        );
    }

    // deterministic error lines, pinned to the exact historical bytes
    for (request, want) in [
        (
            "this is { not json",
            r#"{"error":"bad request JSON: expected value at byte 0","ok":false}"#,
        ),
        (
            r#"{"budgets": [1, 1]}"#,
            r#"{"error":"`config` is required","ok":false}"#,
        ),
        (
            r#"{"type": "hello"}"#,
            r#"{"error":"unknown request type `hello`","ok":false}"#,
        ),
        (
            r#"{"config": "C1", "budgets": [2, 2], "algorithm": "quantum"}"#,
            r#"{"error":"unknown algorithm `quantum`","ok":false}"#,
        ),
    ] {
        let mut line = String::new();
        c.send(request);
        c.reader.read_line(&mut line).unwrap();
        // `bad request JSON` detail wording comes from the JSON shim;
        // pin the stable prefix instead of the parser's message tail
        if request.starts_with("this") {
            assert!(
                line.trim_end()
                    .starts_with(r#"{"error":"bad request JSON:"#),
                "{line}"
            );
            assert!(line.trim_end().ends_with(r#"","ok":false}"#), "{line}");
            let _ = want;
        } else {
            assert_eq!(line.trim_end(), want, "for {request}");
        }
    }

    // the shutdown acknowledgement is bit-stable too
    c.send(r#"{"type": "shutdown", "id": 5}"#);
    let mut line = String::new();
    c.reader.read_line(&mut line).unwrap();
    assert_eq!(
        line.trim_end(),
        r#"{"id":5,"ok":true,"shutting_down":true}"#
    );
    join.join().unwrap();
}

#[test]
fn v2_session_negotiates_and_speaks_structured_versioned_responses() {
    let eng = engine();
    let (handle, join) = start(eng.clone());
    let mut c = Client::connect(&handle);

    // hello: protocol, features, server version
    let hello = c.roundtrip(r#"{"v": 2, "type": "hello"}"#);
    assert!(ok(&hello), "{hello:?}");
    let obj = hello.as_object().unwrap();
    assert_eq!(uint(obj.get("v")), Some(2));
    assert_eq!(uint(obj.get("protocol")), Some(2));
    let features = obj.get("features").unwrap().as_array().unwrap();
    for want in ["batch", "sp", "stats", "store"] {
        assert!(features.iter().any(|f| f.as_str() == Some(want)), "{want}");
    }

    // a v2 query answers with the same payload as v1 plus the version key
    let q2 = format!(r#"{{"v": 2, {}"#, &Q1[1..]);
    let versioned = c.roundtrip(&q2);
    assert!(ok(&versioned), "{versioned:?}");
    assert_eq!(uint(versioned.as_object().unwrap().get("v")), Some(2));
    let plain = c.roundtrip(Q1);
    for key in ["algorithm", "allocation", "welfare"] {
        assert_eq!(
            versioned.as_object().unwrap().get(key),
            plain.as_object().unwrap().get(key),
            "v1/v2 payload diverged on {key}"
        );
    }
    assert_eq!(plain.as_object().unwrap().get("v"), None);

    // engine refusals carry the stable structured triple
    let r = c.roundtrip(r#"{"v": 2, "config": "C1", "budgets": [50, 50]}"#);
    assert!(!ok(&r));
    let err = r
        .as_object()
        .unwrap()
        .get("error")
        .unwrap()
        .as_object()
        .unwrap();
    assert_eq!(uint(err.get("code")), Some(422));
    assert_eq!(err.get("kind"), Some(&Value::String("bad-query".into())));
    assert_eq!(err.get("retryable"), Some(&Value::Bool(false)));
    assert!(err
        .get("message")
        .unwrap()
        .as_str()
        .unwrap()
        .contains("budget-cap"));

    // malformed batch entries keep their per-entry structured codes
    // inside the envelope: a parse failure (400) next to an engine
    // refusal (422) next to a success
    let batch = format!(
        r#"{{"v": 2, "type": "batch", "queries": [{{"budgets": [1]}}, {{"config": "C1", "budgets": [50, 50]}}, {Q1}]}}"#
    );
    let r = c.roundtrip(&batch);
    assert!(ok(&r), "{r:?}");
    assert_eq!(uint(r.as_object().unwrap().get("v")), Some(2));
    let answers = r
        .as_object()
        .unwrap()
        .get("answers")
        .unwrap()
        .as_array()
        .unwrap();
    assert_eq!(answers.len(), 3);
    let entry = |k: usize| answers[k].as_object().unwrap();
    let e0 = entry(0).get("error").unwrap().as_object().unwrap();
    assert_eq!(uint(e0.get("code")), Some(400));
    assert_eq!(e0.get("kind"), Some(&Value::String("bad-request".into())));
    assert!(e0
        .get("message")
        .unwrap()
        .as_str()
        .unwrap()
        .contains("query 0"));
    let e1 = entry(1).get("error").unwrap().as_object().unwrap();
    assert_eq!(uint(e1.get("code")), Some(422));
    assert_eq!(e1.get("kind"), Some(&Value::String("bad-query".into())));
    assert_eq!(entry(2).get("ok"), Some(&Value::Bool(true)));

    // unsupported versions are refused with the taxonomy's 426
    let r = c.roundtrip(r#"{"v": 7, "type": "stats"}"#);
    assert!(!ok(&r));
    let err = r
        .as_object()
        .unwrap()
        .get("error")
        .unwrap()
        .as_object()
        .unwrap();
    assert_eq!(uint(err.get("code")), Some(426));
    assert_eq!(
        err.get("kind"),
        Some(&Value::String("unsupported-version".into()))
    );

    // stats and the shutdown ack are versioned as well
    let stats = c.roundtrip(r#"{"v": 2, "type": "stats"}"#);
    assert!(ok(&stats));
    assert_eq!(uint(stats.as_object().unwrap().get("v")), Some(2));
    let bye = c.roundtrip(r#"{"v": 2, "type": "shutdown"}"#);
    assert!(ok(&bye));
    assert_eq!(uint(bye.as_object().unwrap().get("v")), Some(2));
    join.join().unwrap();
}

#[test]
fn shutdown_request_stops_the_server_gracefully() {
    let (handle, join) = start(engine());
    let mut c = Client::connect(&handle);
    assert!(ok(&c.roundtrip(Q1)));
    let bye = c.roundtrip(r#"{"type": "shutdown"}"#);
    assert!(ok(&bye));
    assert_eq!(
        bye.as_object().unwrap().get("shutting_down"),
        Some(&Value::Bool(true))
    );
    // run() returns; new connections are refused or closed immediately
    join.join().unwrap();
    let refused = match TcpStream::connect(handle.local_addr()) {
        Err(_) => true,
        Ok(s) => {
            // the listener socket is gone, so at best the OS accepts and
            // immediately resets; a read must yield EOF/error
            let mut r = BufReader::new(s);
            let mut line = String::new();
            matches!(r.read_line(&mut line), Ok(0) | Err(_))
        }
    };
    assert!(refused, "server still serving after shutdown");
}

// --------------------------------------------------------------- metrics

/// The `{"type": "metrics"}` scrape is the observability tentpole: one
/// v2 request must surface engine, store, and server instrumentation in
/// a single registry snapshot.
#[test]
fn metrics_scrape_covers_the_whole_stack_over_live_tcp() {
    let (handle, join) = start(engine());
    let mut c = Client::connect(&handle);

    // hello advertises the feature before anyone relies on it
    let hello = c.roundtrip(r#"{"v": 2, "type": "hello"}"#);
    assert!(ok(&hello));
    let features = hello
        .as_object()
        .unwrap()
        .get("features")
        .unwrap()
        .as_array()
        .unwrap();
    assert!(
        features.contains(&Value::String("metrics".into())),
        "hello must advertise the metrics feature: {features:?}"
    );

    // generate traffic across request types: two identical queries (the
    // second hits the welfare cache) plus a batch
    assert!(ok(&c.roundtrip(Q1)));
    assert!(ok(&c.roundtrip(Q1)));
    let batch = format!(r#"{{"type": "batch", "queries": [{Q1}, {Q2}]}}"#);
    assert!(ok(&c.roundtrip(&batch)));

    let r = c.roundtrip(r#"{"v": 2, "type": "metrics"}"#);
    assert!(ok(&r), "metrics scrape failed: {r:?}");
    let obj = r.as_object().unwrap();
    assert_eq!(uint(obj.get("v")), Some(2));
    let snap = cwelmax_obs::Snapshot::from_value(obj.get("metrics").unwrap())
        .expect("metrics payload round-trips into a Snapshot");

    // server layer: accepts, per-type request latency
    assert_eq!(snap.counters["server.connections"], 1);
    assert!(snap.counters["server.requests_total"] >= 4);
    assert!(snap.histograms["server.request_ns.query"].count >= 2);
    assert_eq!(snap.histograms["server.request_ns.batch"].count, 1);
    assert_eq!(snap.histograms["server.request_ns.hello"].count, 1);

    // engine layer: query latency and welfare-cache hit/miss traffic
    assert!(snap.counters["engine.queries"] >= 2);
    assert!(snap.histograms["engine.query_ns"].count >= 2);
    assert!(snap.histograms["engine.query_ns"].sum > 0);
    assert!(snap.histograms["engine.batch_ns"].count >= 1);
    assert!(
        snap.counters["engine.welfare_cache_hits"] >= 1,
        "repeating an identical query must hit the welfare cache"
    );
    assert!(snap.counters["engine.welfare_cache_misses"] >= 1);

    handle.shutdown();
    join.join().unwrap();
}

/// v1 never learns new request types: `{"type": "metrics"}` without
/// `"v": 2` gets the exact legacy unknown-type error, and the v1 stats
/// body stays free of the new latency percentile fields.
#[test]
fn metrics_and_percentiles_stay_out_of_the_v1_dialect() {
    let (handle, join) = start(engine());
    let mut c = Client::connect(&handle);
    assert!(ok(&c.roundtrip(Q1)));

    let r = c.roundtrip(r#"{"type": "metrics"}"#);
    assert!(!ok(&r));
    assert_eq!(error_text(&r), "unknown request type `metrics`");

    let v1 = c.roundtrip(r#"{"type": "stats"}"#);
    assert!(ok(&v1));
    let server = v1
        .as_object()
        .unwrap()
        .get("server")
        .unwrap()
        .as_object()
        .unwrap();
    assert!(server.get("mean_latency_seconds").is_some());
    assert!(
        server.get("latency_p50_ns").is_none(),
        "v1 stats bytes must not grow new fields"
    );

    handle.shutdown();
    join.join().unwrap();
}

/// v2 stats report histogram-backed latency percentiles that are
/// ordered and consistent with the recorded request traffic.
#[test]
fn v2_stats_report_ordered_latency_percentiles() {
    let (handle, join) = start(engine());
    let mut c = Client::connect(&handle);
    for _ in 0..3 {
        assert!(ok(&c.roundtrip(Q1)));
    }
    let r = c.roundtrip(r#"{"v": 2, "type": "stats"}"#);
    assert!(ok(&r));
    let server = r
        .as_object()
        .unwrap()
        .get("server")
        .unwrap()
        .as_object()
        .unwrap();
    let p50 = uint(server.get("latency_p50_ns")).expect("v2 stats carry latency_p50_ns");
    let p99 = uint(server.get("latency_p99_ns")).expect("v2 stats carry latency_p99_ns");
    let max = uint(server.get("latency_max_ns")).expect("v2 stats carry latency_max_ns");
    assert!(p50 > 0, "three real queries cannot all take zero time");
    assert!(p50 <= p99, "p50 {p50} must not exceed p99 {p99}");
    assert!(p99 <= max, "p99 {p99} must not exceed max {max}");
    assert_eq!(uint(server.get("requests")), Some(3));

    handle.shutdown();
    join.join().unwrap();
}

/// Connection lifecycle and error paths speak through the structured
/// logger: debug level shows conn_open/conn_closed NDJSON events with
/// correlating connection ids.
#[test]
fn structured_logger_traces_connection_lifecycle() {
    use std::sync::Mutex;

    #[derive(Clone, Default)]
    struct Buf(Arc<Mutex<Vec<u8>>>);
    impl Write for Buf {
        fn write(&mut self, b: &[u8]) -> std::io::Result<usize> {
            self.0.lock().unwrap().extend_from_slice(b);
            Ok(b.len())
        }
        fn flush(&mut self) -> std::io::Result<()> {
            Ok(())
        }
    }

    let buf = Buf::default();
    let logger = Arc::new(cwelmax_obs::Logger::with_sink(
        cwelmax_obs::Level::Debug,
        Box::new(buf.clone()),
    ));
    // an aggressive slow-query threshold so real queries trip it
    logger.set_slow_query_ns(1);

    let server = CampaignServer::bind(engine(), "127.0.0.1:0")
        .unwrap()
        .with_logger(logger);
    let handle = server.handle();
    let join = std::thread::spawn(move || server.run().unwrap());

    let mut c = Client::connect(&handle);
    assert!(ok(&c.roundtrip(Q1)));
    drop(c); // EOF closes the connection
             // the worker thread logs conn_closed after the socket drops; give it
             // a moment before shutting down
    std::thread::sleep(std::time::Duration::from_millis(100));
    handle.shutdown();
    join.join().unwrap();

    let text = String::from_utf8(buf.0.lock().unwrap().clone()).unwrap();
    let events: Vec<Value> = text
        .lines()
        .map(|l| serde_json::from_str(l).expect("every log line is valid JSON"))
        .collect();
    let with_event = |name: &str| -> Vec<&Value> {
        events
            .iter()
            .filter(|e| e.as_object().unwrap().get("event") == Some(&Value::String(name.into())))
            .collect()
    };
    let opens = with_event("conn_open");
    let closes = with_event("conn_closed");
    assert_eq!(opens.len(), 1, "one connection, one conn_open: {text}");
    assert_eq!(closes.len(), 1, "one connection, one conn_closed: {text}");
    // open and close correlate through the same connection id
    assert_eq!(
        opens[0].as_object().unwrap().get("conn"),
        closes[0].as_object().unwrap().get("conn")
    );
    // the 1ns threshold makes every request a slow query
    let slow = with_event("slow_query");
    assert!(!slow.is_empty(), "expected slow_query events in: {text}");
    let slow_obj = slow[0].as_object().unwrap();
    assert!(uint(slow_obj.get("elapsed_ns")).unwrap() >= 1);
    assert_eq!(
        slow_obj.get("request_type"),
        Some(&Value::String("query".into()))
    );
    assert_eq!(slow_obj.get("level"), Some(&Value::String("warn".into())));
}

#[test]
fn client_trace_ids_are_echoed_and_their_span_trees_retained() {
    // the tentpole contract at rate 0.0: only client-pinned traces are
    // recorded, the id is echoed canonically, and the retained span tree
    // nests server → engine → welfare
    let (handle, join) = start(engine());
    let mut c = Client::connect(&handle);

    let traced = c.roundtrip(
        r#"{"v": 2, "trace": "c0ffee", "config": "C1", "budgets": [3, 3], "samples": 100}"#,
    );
    assert!(ok(&traced), "{traced:?}");
    assert_eq!(
        traced.as_object().unwrap().get("trace"),
        Some(&Value::String("0000000000c0ffee".into())),
        "client trace ids come back zero-padded to canonical 16-hex"
    );
    // untraced v2 and every v1 answer stay trace-free (v1 byte pin)
    let plain = c.roundtrip(r#"{"v": 2, "config": "C1", "budgets": [3, 3], "samples": 100}"#);
    assert!(plain.as_object().unwrap().get("trace").is_none());
    let v1 = c.roundtrip(Q1);
    assert!(v1.as_object().unwrap().get("trace").is_none());

    let resp = c.roundtrip(r#"{"v": 2, "type": "traces"}"#);
    assert!(ok(&resp), "{resp:?}");
    let arr = resp.as_object().unwrap()["traces"].as_array().unwrap();
    assert_eq!(arr.len(), 1, "rate 0.0 retains only the pinned trace");
    let trace = cwelmax_obs::Trace::from_value(&arr[0]).expect("wire trace parses");
    assert_eq!(trace.trace_id, 0xc0ffee);
    assert!(trace.pinned);
    assert!(!trace.error);
    assert!(trace.duration_ns > 0);
    assert_eq!(trace.spans.len(), 1, "one root span per request");
    let root = &trace.spans[0];
    assert_eq!(root.name, "server.query");
    let engine_span = root
        .children
        .iter()
        .find(|s| s.name == "engine.query")
        .expect("engine.query nests under server.query");
    assert!(
        engine_span
            .attrs
            .iter()
            .any(|(k, v)| k == "algorithm" && *v == cwelmax_obs::AttrValue::Str("seqgrd-nm".into())),
        "engine span names its algorithm: {:?}",
        engine_span.attrs
    );
    let welfare: Vec<_> = engine_span
        .children
        .iter()
        .filter(|s| s.name == "engine.welfare")
        .collect();
    assert!(
        !welfare.is_empty(),
        "welfare evaluations hang under the engine query span"
    );
    assert!(
        welfare
            .iter()
            .all(|w| w.attrs.iter().any(|(k, _)| k == "cache_hit")),
        "every welfare span reports its cache outcome"
    );
    // a v1 line asking for traces gets the legacy unknown-type bytes
    let legacy = c.roundtrip(r#"{"type": "traces"}"#);
    assert!(!ok(&legacy));
    assert!(error_text(&legacy).contains("unknown request type"));

    handle.shutdown();
    join.join().unwrap();
}

#[test]
fn sampled_tracing_mints_ids_and_stats_report_windowed_percentiles() {
    // --trace-sample 1.0: every request is recorded under a server-minted
    // id (echoed on v2 answers), and v2 stats carry last-minute windowed
    // percentiles next to the lifetime ones
    let server = CampaignServer::bind(engine(), "127.0.0.1:0")
        .unwrap()
        .with_trace_sample(1.0)
        .with_trace_buffer(8);
    let handle = server.handle();
    let join = std::thread::spawn(move || server.run().unwrap());
    let mut c = Client::connect(&handle);

    let a = c.roundtrip(r#"{"v": 2, "config": "C1", "budgets": [3, 3], "samples": 100}"#);
    assert!(ok(&a), "{a:?}");
    let minted = a.as_object().unwrap()["trace"]
        .as_str()
        .expect("sampled v2 answers echo a server-minted trace id")
        .to_string();
    assert_eq!(minted.len(), 16);
    // batches are traced too, as one trace under server.batch
    let b = c.roundtrip(
        r#"{"v": 2, "type": "batch", "queries": [{"config": "C1", "budgets": [2, 2], "samples": 100}, {"config": "C2", "budgets": [2, 2], "samples": 100}]}"#,
    );
    assert!(ok(&b), "{b:?}");
    assert!(b.as_object().unwrap().get("trace").is_some());

    let resp = c.roundtrip(r#"{"v": 2, "type": "traces"}"#);
    let arr = resp.as_object().unwrap()["traces"].as_array().unwrap();
    assert_eq!(arr.len(), 2, "both requests were retained at rate 1.0");
    let traces: Vec<_> = arr
        .iter()
        .map(|t| cwelmax_obs::Trace::from_value(t).unwrap())
        .collect();
    // newest first: the batch, then the single query
    assert_eq!(traces[0].spans[0].name, "server.batch");
    assert_eq!(traces[1].spans[0].name, "server.query");
    assert_eq!(
        cwelmax_obs::trace::format_trace_id(traces[1].trace_id),
        minted,
        "the echoed id finds its trace in the buffer"
    );
    assert!(!traces[1].pinned, "server-minted traces are not pinned");
    let engine_batch = traces[0].spans[0]
        .children
        .iter()
        .find(|s| s.name == "engine.batch")
        .expect("engine.batch nests under server.batch");
    assert_eq!(
        engine_batch
            .children
            .iter()
            .filter(|s| s.name == "engine.query")
            .count(),
        2,
        "each batch entry contributes its own engine.query span"
    );
    // limit is honored, newest first
    let limited = c.roundtrip(r#"{"v": 2, "type": "traces", "limit": 1}"#);
    let arr = limited.as_object().unwrap()["traces"].as_array().unwrap();
    assert_eq!(arr.len(), 1);

    // windowed percentiles: v2-only, fresh (everything above happened
    // within the first 5s interval, so window == lifetime-ish counts)
    let stats = c.roundtrip(r#"{"v": 2, "type": "stats"}"#);
    let s = stats.as_object().unwrap()["server"].as_object().unwrap();
    let window_reqs = uint(s.get("latency_window_requests")).unwrap();
    let lifetime_reqs = uint(s.get("requests")).unwrap();
    assert!(window_reqs >= 1 && window_reqs <= lifetime_reqs);
    assert!(uint(s.get("latency_window_p50_ns")).is_some());
    assert!(uint(s.get("latency_window_p99_ns")).is_some());
    assert_eq!(uint(s.get("latency_window_seconds")), Some(60));
    assert!(
        uint(s.get("latency_window_p99_ns")).unwrap() <= uint(s.get("latency_max_ns")).unwrap(),
        "windowed p99 is bounded by the lifetime max"
    );
    // and none of it leaks into the v1 stats body
    let v1_stats = c.roundtrip(r#"{"type": "stats"}"#);
    let s = v1_stats.as_object().unwrap()["server"].as_object().unwrap();
    assert!(s.get("latency_window_p50_ns").is_none());

    handle.shutdown();
    join.join().unwrap();
}

#[test]
fn sp_follow_up_trace_shows_conditioned_derive_and_per_shard_faults() {
    // the storage acceptance bar: a traced SP follow-up against a 4-shard
    // store retains a span tree proving the conditioned derive faulted
    // exactly shards 0..4, each under its own store.shard_fault span
    use cwelmax_obs::AttrValue;
    let graph = Arc::new(generators::erdos_renyi(
        100,
        400,
        7,
        ProbabilityModel::WeightedCascade,
    ));
    let params = ImmParams {
        eps: 0.5,
        ell: 1.0,
        seed: 7,
        threads: 2,
        max_rr_sets: 500_000,
    };
    let index = RrIndex::build(&graph, 8, &params);
    let dir = std::env::temp_dir().join(format!("cwelmax-server-trace-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    cwelmax_store::write_store(&index, &dir, 4).unwrap();
    let store = Arc::new(cwelmax_store::ShardedIndex::open(&dir).unwrap());
    let eng = Arc::new(
        EngineBuilder::from_backend(store)
            .graph(graph)
            .build()
            .unwrap(),
    );
    let (handle, join) = start(eng);
    let mut c = Client::connect(&handle);

    let resp = c.roundtrip(
        r#"{"v": 2, "trace": "feed", "config": "C1", "budgets": [3, 3], "sp": [[0, 1], [17, 1]], "samples": 100}"#,
    );
    assert!(ok(&resp), "{resp:?}");
    assert_eq!(
        resp.as_object().unwrap().get("trace"),
        Some(&Value::String("000000000000feed".into()))
    );

    let traces = c.roundtrip(r#"{"v": 2, "type": "traces", "limit": 1}"#);
    let arr = traces.as_object().unwrap()["traces"].as_array().unwrap();
    assert_eq!(arr.len(), 1);
    let trace = cwelmax_obs::Trace::from_value(&arr[0]).unwrap();
    assert_eq!(trace.trace_id, 0xfeed);
    let root = &trace.spans[0];
    assert_eq!(root.name, "server.query");
    let engine_span = root
        .children
        .iter()
        .find(|s| s.name == "engine.query")
        .expect("engine.query under server.query");
    assert!(
        engine_span
            .attrs
            .iter()
            .any(|(k, v)| k == "follow_up" && *v == AttrValue::Bool(true)),
        "an SP-bearing query is a follow-up: {:?}",
        engine_span.attrs
    );
    let derive = engine_span
        .children
        .iter()
        .find(|s| s.name == "engine.conditioned_derive")
        .expect("first follow-up pays the conditioned derive");
    assert!(
        derive.attrs.iter().any(|(k, _)| k == "sp_fingerprint"),
        "derive span carries the SP fingerprint: {:?}",
        derive.attrs
    );
    let store_span = derive
        .children
        .iter()
        .find(|s| s.name == "store.derive_conditioned")
        .expect("storage derive nests under the engine derive");
    let mut shards: Vec<u64> = store_span
        .children
        .iter()
        .filter(|s| s.name == "store.shard_fault")
        .map(|s| {
            match s
                .attrs
                .iter()
                .find(|(k, _)| k == "shard")
                .map(|(_, v)| v.clone())
            {
                Some(AttrValue::U64(k)) => k,
                other => panic!("shard fault span lacks a shard attr: {other:?}"),
            }
        })
        .collect();
    shards.sort_unstable();
    assert_eq!(
        shards,
        vec![0, 1, 2, 3],
        "the first SP follow-up faults every shard, one span each"
    );
    // span timing is consistent: faults fall inside the derive span
    for fault in store_span
        .children
        .iter()
        .filter(|s| s.name == "store.shard_fault")
    {
        assert!(fault.start_ns >= store_span.start_ns);
        assert!(fault.end_ns <= store_span.end_ns);
    }

    handle.shutdown();
    join.join().unwrap();
    std::fs::remove_dir_all(&dir).ok();
}

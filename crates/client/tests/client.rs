//! Live-TCP tests for `CwelmaxClient`: negotiation, typed round-trips
//! byte-identical to in-process engine calls (against both a monolithic
//! index and a sharded store), v1 fallback, and reconnect-once.

use cwelmax_client::{ClientError, CwelmaxClient};
use cwelmax_diffusion::{Allocation, SimulationConfig};
use cwelmax_engine::{CampaignQuery, EngineBuilder, QueryAlgorithm, RrIndex};
use cwelmax_graph::{generators, Graph, ProbabilityModel};
use cwelmax_rrset::ImmParams;
use cwelmax_server::{CampaignServer, ServerHandle};
use cwelmax_store::FromStore;
use cwelmax_utility::configs::{self, TwoItemConfig};
use std::io::{BufRead, BufReader, Write};
use std::net::TcpListener;
use std::sync::Arc;

fn graph_and_index() -> (Arc<Graph>, Arc<RrIndex>) {
    let graph = Arc::new(generators::erdos_renyi(
        100,
        400,
        7,
        ProbabilityModel::WeightedCascade,
    ));
    let params = ImmParams {
        eps: 0.5,
        ell: 1.0,
        seed: 7,
        threads: 2,
        max_rr_sets: 500_000,
    };
    let index = Arc::new(RrIndex::build(&graph, 8, &params));
    (graph, index)
}

fn start(engine: cwelmax_engine::CampaignEngine) -> (ServerHandle, std::thread::JoinHandle<()>) {
    let server = CampaignServer::bind(Arc::new(engine), "127.0.0.1:0").unwrap();
    let handle = server.handle();
    let join = std::thread::spawn(move || server.run().unwrap());
    (handle, join)
}

fn query(cfg: TwoItemConfig, b: usize, sp: Allocation) -> CampaignQuery {
    CampaignQuery {
        model: configs::two_item_config(cfg),
        budgets: vec![b, b],
        algorithm: QueryAlgorithm::SeqGrdNm,
        sp,
        // threads: 1 matches what the wire decoder reconstructs, so the
        // in-process reference query is the byte-identical twin of what
        // the server executes
        sim: SimulationConfig {
            samples: 100,
            threads: 1,
            base_seed: 0x5EED,
        },
    }
}

/// The acceptance bar: fresh, SP-follow-up, and batch queries through
/// the typed client answer **byte-identically** to in-process engine
/// calls — against a monolithic-index server and a sharded-store server.
#[test]
fn typed_round_trips_match_in_process_engine_on_index_and_store_backends() {
    let (graph, index) = graph_and_index();
    // the in-process reference engine
    let reference = EngineBuilder::from_index(index.clone())
        .graph(graph.clone())
        .build()
        .unwrap();
    // a store written from the same index
    let dir = std::env::temp_dir().join(format!("cwelmax-client-store-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    cwelmax_store::write_store(&index, &dir, 5).unwrap();

    let backends: Vec<(&str, cwelmax_engine::CampaignEngine)> = vec![
        (
            "index",
            EngineBuilder::from_index(index.clone())
                .graph(graph.clone())
                .build()
                .unwrap(),
        ),
        (
            "store",
            EngineBuilder::from_store(&dir)
                .graph(graph.clone())
                .build()
                .unwrap(),
        ),
    ];
    for (name, engine) in backends {
        let (handle, join) = start(engine);
        let mut client = CwelmaxClient::connect(handle.local_addr().to_string()).unwrap();

        // negotiation: a v2 session with the full feature set
        assert_eq!(client.protocol(), 2, "{name}: v2 must be negotiated");
        for feature in ["batch", "sp", "stats", "store"] {
            assert!(client.has_feature(feature), "{name}: missing {feature}");
        }
        assert!(!client.negotiated().unwrap().server_version.is_empty());

        // fresh query
        let fresh = query(TwoItemConfig::C1, 3, Allocation::new());
        let got = client.query(&fresh).unwrap();
        let want = reference.query(&fresh).unwrap();
        assert_eq!(got.allocation, want.allocation.pairs(), "{name}: fresh");
        assert_eq!(
            got.welfare.to_bits(),
            want.welfare.to_bits(),
            "{name}: fresh welfare must be bit-identical"
        );
        assert!(got.sp.is_empty());

        // SP follow-up
        let follow = query(
            TwoItemConfig::C1,
            3,
            Allocation::from_pairs(vec![(0, 1), (17, 1)]),
        );
        let got = client.query(&follow).unwrap();
        let want = reference.query(&follow).unwrap();
        assert_eq!(got.allocation, want.allocation.pairs(), "{name}: follow");
        assert_eq!(got.sp, follow.sp.pairs(), "{name}: sp echoed");
        assert_eq!(got.welfare.to_bits(), want.welfare.to_bits(), "{name}");

        // batch: two good entries around one the engine must refuse
        // (budget above the cap), whose structured code must survive the
        // envelope
        let too_big = query(TwoItemConfig::C2, 50, Allocation::new());
        let batch = vec![fresh.clone(), too_big, follow.clone()];
        let rows = client.query_batch(&batch).unwrap();
        assert_eq!(rows.len(), 3, "{name}");
        for k in [0usize, 2] {
            let got = rows[k].as_ref().unwrap();
            let want = reference.query(&batch[k]).unwrap();
            assert_eq!(got.allocation, want.allocation.pairs(), "{name} entry {k}");
            assert_eq!(got.welfare.to_bits(), want.welfare.to_bits(), "{name}");
        }
        let err = rows[1].as_ref().unwrap_err();
        assert_eq!(err.code, 422, "{name}: engine refusal is bad-query");
        assert_eq!(err.kind, "bad-query", "{name}");
        assert!(!err.retryable, "{name}");

        // typed stats see the backend shape
        let stats = client.stats().unwrap();
        assert_eq!(stats.server_queries, 4);
        match name {
            "store" => {
                assert_eq!(stats.shards_total, 5);
                assert!(stats.store_bytes_on_disk > 0);
            }
            _ => assert_eq!(stats.shards_total, 1),
        }

        client.shutdown().unwrap();
        join.join().unwrap();
    }
    std::fs::remove_dir_all(&dir).ok();
}

/// A pre-v2 server rejects `hello`; the client must fall back to v1
/// silently and keep every typed call working (with string-only errors).
#[test]
fn client_falls_back_to_v1_when_hello_is_rejected() {
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    let server = std::thread::spawn(move || {
        let (stream, _) = listener.accept().unwrap();
        let mut reader = BufReader::new(stream.try_clone().unwrap());
        let write = |line: &str| {
            let mut s = &stream;
            s.write_all(line.as_bytes()).unwrap();
            s.write_all(b"\n").unwrap();
            s.flush().unwrap();
        };
        let mut line = String::new();
        // 1: hello → the legacy unknown-type error, verbatim
        reader.read_line(&mut line).unwrap();
        assert!(line.contains("hello"), "{line}");
        write(r#"{"error":"unknown request type `hello`","ok":false}"#);
        // 2: the query → a canned v1 answer
        line.clear();
        reader.read_line(&mut line).unwrap();
        assert!(
            !line.contains("\"v\""),
            "v1 fallback must not tag requests: {line}"
        );
        write(
            r#"{"algorithm":"SeqGRD-NM","allocation":[[4,0],[9,1]],"elapsed_seconds":0.001,"ok":true,"welfare":12.5}"#,
        );
        // 3: a failing query → a v1 string error
        line.clear();
        reader.read_line(&mut line).unwrap();
        write(r#"{"error":"bad query: budget too big","ok":false}"#);
    });

    let mut client = CwelmaxClient::connect(addr.to_string()).unwrap();
    assert_eq!(client.protocol(), 1, "fallback must report v1");
    assert!(client.negotiated().is_none());
    assert!(!client.has_feature("batch"), "v1 advertises nothing");

    let q = query(TwoItemConfig::C1, 2, Allocation::new());
    let answer = client.query(&q).unwrap();
    assert_eq!(answer.allocation, vec![(4, 0), (9, 1)]);
    assert_eq!(answer.welfare, 12.5);

    match client.query(&q) {
        Err(ClientError::Server(e)) => {
            assert_eq!(e.code, 0, "v1 errors carry no stable code");
            assert_eq!(e.kind, "error");
            assert!(e.message.contains("budget too big"));
        }
        other => panic!("expected a server error, got {other:?}"),
    }
    server.join().unwrap();
}

/// The accept-time `--max-conns` busy refusal arrives before the server
/// reads anything — it must surface as a server error from `connect`,
/// not masquerade as a v1 fallback on a socket that is already dead.
#[test]
fn busy_refusal_at_connect_surfaces_as_a_server_error_not_v1_fallback() {
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    let server = std::thread::spawn(move || {
        let (stream, _) = listener.accept().unwrap();
        let mut s = &stream;
        s.write_all(
            b"{\"error\":\"server busy: connection limit 2 reached, retry later\",\"ok\":false}\n",
        )
        .unwrap();
        s.flush().unwrap();
        // close immediately, exactly like CampaignServer's refuse_busy
    });
    match CwelmaxClient::connect(addr.to_string()) {
        Err(ClientError::Server(e)) => {
            assert!(e.message.contains("server busy"), "{e}");
        }
        Ok(c) => panic!("connect succeeded at protocol v{}", c.protocol()),
        Err(other) => panic!("expected Server error, got {other:?}"),
    }
    server.join().unwrap();
}

/// A connection that dies underneath the client (server restart, idle
/// reap) is re-established — and re-negotiated — once, transparently.
#[test]
fn client_reconnects_once_when_the_connection_breaks() {
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    let hello = r#"{"features":["batch","sp","stats","store"],"ok":true,"protocol":2,"server_version":"0.1.0","v":2}"#;
    let server = std::thread::spawn(move || {
        // connection 1: negotiate, then drop dead before the first query
        let (stream, _) = listener.accept().unwrap();
        let mut reader = BufReader::new(stream.try_clone().unwrap());
        let mut line = String::new();
        reader.read_line(&mut line).unwrap();
        {
            let mut s = &stream;
            s.write_all(hello.as_bytes()).unwrap();
            s.write_all(b"\n").unwrap();
            s.flush().unwrap();
        }
        drop(reader);
        drop(stream);
        // connection 2: full service
        let (stream, _) = listener.accept().unwrap();
        let mut reader = BufReader::new(stream.try_clone().unwrap());
        let write = |text: &str| {
            let mut s = &stream;
            s.write_all(text.as_bytes()).unwrap();
            s.write_all(b"\n").unwrap();
            s.flush().unwrap();
        };
        let mut line = String::new();
        reader.read_line(&mut line).unwrap(); // re-negotiation
        assert!(line.contains("hello"), "{line}");
        write(hello);
        line.clear();
        reader.read_line(&mut line).unwrap(); // the retried query
        assert!(line.contains("\"v\""), "retry keeps the v2 dialect");
        write(
            r#"{"algorithm":"SeqGRD-NM","allocation":[[2,0]],"elapsed_seconds":0.001,"ok":true,"v":2,"welfare":3.25}"#,
        );
    });

    let mut client = CwelmaxClient::connect(addr.to_string()).unwrap();
    assert_eq!(client.protocol(), 2);
    // the first connection is already dead; this must succeed anyway
    let answer = client
        .query(&query(TwoItemConfig::C1, 1, Allocation::new()))
        .unwrap();
    assert_eq!(answer.allocation, vec![(2, 0)]);
    assert_eq!(answer.welfare, 3.25);
    assert_eq!(client.protocol(), 2, "re-negotiated back to v2");
    server.join().unwrap();
}

/// The typed `metrics()` scrape against a real server: hello advertises
/// the feature, and the decoded snapshot carries server counters and
/// engine latency histograms reflecting the traffic the client itself
/// just generated.
#[test]
fn metrics_round_trips_a_typed_registry_snapshot() {
    let (graph, index) = graph_and_index();
    let engine = EngineBuilder::from_index(index)
        .graph(graph)
        .build()
        .unwrap();
    let (handle, join) = start(engine);

    let mut client = CwelmaxClient::connect(handle.local_addr().to_string()).unwrap();
    assert_eq!(client.protocol(), 2);
    assert!(
        client.has_feature("metrics"),
        "a v2 server advertises the metrics feature"
    );

    let q = query(TwoItemConfig::C1, 2, Allocation::new());
    client.query(&q).unwrap();
    client.query(&q).unwrap();

    let snap = client.metrics().unwrap();
    // the hello + two queries all count as requests
    assert!(snap.counters["server.requests_total"] >= 3);
    assert_eq!(snap.counters["engine.queries"], 2);
    let query_ns = &snap.histograms["engine.query_ns"];
    assert_eq!(query_ns.count, 2);
    assert!(query_ns.sum > 0, "two real queries take nonzero time");
    assert!(query_ns.quantile(0.5) <= query_ns.max);
    assert_eq!(snap.counters["engine.welfare_cache_hits"], 1);
    assert_eq!(snap.counters["engine.welfare_cache_misses"], 1);

    client.shutdown().unwrap();
    join.join().unwrap();
}

/// On a fallen-back v1 connection `metrics()` fails fast with a clear
/// protocol error instead of sending a request v1 cannot answer.
#[test]
fn metrics_fails_fast_on_a_v1_connection() {
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    let server = std::thread::spawn(move || {
        let (stream, _) = listener.accept().unwrap();
        let mut reader = BufReader::new(stream.try_clone().unwrap());
        let mut line = String::new();
        reader.read_line(&mut line).unwrap();
        let mut s = &stream;
        s.write_all(b"{\"error\":\"unknown request type `hello`\",\"ok\":false}\n")
            .unwrap();
        s.flush().unwrap();
    });
    let mut client = CwelmaxClient::connect(addr.to_string()).unwrap();
    assert_eq!(client.protocol(), 1);
    match client.metrics() {
        Err(ClientError::Protocol(msg)) => {
            assert!(msg.contains("v2"), "error names the protocol gap: {msg}")
        }
        other => panic!("expected a protocol error, got {other:?}"),
    }
    server.join().unwrap();
}

/// The typed tracing surface against a real server: `query_traced`
/// echoes the pinned id on the answer, `traces()` returns the retained
/// trace with its span tree, and both fail fast on a v1 connection.
#[test]
fn query_traced_pins_a_trace_and_traces_fetches_its_span_tree() {
    let (graph, index) = graph_and_index();
    let engine = EngineBuilder::from_index(index)
        .graph(graph)
        .build()
        .unwrap();
    let (handle, join) = start(engine);

    let mut client = CwelmaxClient::connect(handle.local_addr().to_string()).unwrap();
    assert!(
        client.has_feature("traces"),
        "a v2 server advertises the traces feature"
    );

    let q = query(TwoItemConfig::C1, 2, Allocation::new());
    // untraced queries stay trace-free
    let plain = client.query(&q).unwrap();
    assert!(plain.trace.is_none());
    // a pinned trace comes back canonical on the answer
    let traced = client.query_traced(&q, 0xbead).unwrap();
    assert_eq!(traced.trace.as_deref(), Some("000000000000bead"));

    let traces = client.traces(0).unwrap();
    assert_eq!(traces.len(), 1, "only the pinned trace is retained");
    let trace = &traces[0];
    assert_eq!(trace.trace_id, 0xbead);
    assert!(trace.pinned && !trace.error);
    assert_eq!(trace.spans[0].name, "server.query");
    assert!(
        trace.spans[0]
            .children
            .iter()
            .any(|s| s.name == "engine.query"),
        "the engine span survives the typed round-trip"
    );
    // limit is honored
    assert_eq!(client.traces(1).unwrap().len(), 1);

    client.shutdown().unwrap();
    join.join().unwrap();
}

/// On a fallen-back v1 connection both tracing entry points fail fast
/// with a protocol error instead of emitting bytes v1 cannot parse.
#[test]
fn tracing_fails_fast_on_a_v1_connection() {
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    let server = std::thread::spawn(move || {
        let (stream, _) = listener.accept().unwrap();
        let mut reader = BufReader::new(stream.try_clone().unwrap());
        let mut line = String::new();
        reader.read_line(&mut line).unwrap();
        let mut s = &stream;
        s.write_all(b"{\"error\":\"unknown request type `hello`\",\"ok\":false}\n")
            .unwrap();
        s.flush().unwrap();
    });
    let mut client = CwelmaxClient::connect(addr.to_string()).unwrap();
    assert_eq!(client.protocol(), 1);
    let q = query(TwoItemConfig::C1, 1, Allocation::new());
    for result in [
        client.query_traced(&q, 1).map(|_| ()),
        client.traces(0).map(|_| ()),
    ] {
        match result {
            Err(ClientError::Protocol(msg)) => {
                assert!(msg.contains("v2"), "error names the protocol gap: {msg}")
            }
            other => panic!("expected a protocol error, got {other:?}"),
        }
    }
    server.join().unwrap();
}

/// A busy refusal that carries the server's `retry_after_ms` hint is
/// honored with exactly one bounded back-off and reconnect: the second
/// attempt lands on a freed slot and negotiates v2 normally.
#[test]
fn busy_refusal_with_a_retry_hint_is_retried_once() {
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    let hello = r#"{"features":["batch","sp","stats","store"],"ok":true,"protocol":2,"server_version":"0.1.0","v":2}"#;
    let server = std::thread::spawn(move || {
        // connection 1: the hinted refusal, then close — like
        // CampaignServer's refuse_busy with BUSY_RETRY_AFTER_MS attached
        // (the hello is drained first so the close cannot race the
        // client's in-flight write into a reset)
        let (stream, _) = listener.accept().unwrap();
        {
            let mut reader = BufReader::new(stream.try_clone().unwrap());
            let mut line = String::new();
            reader.read_line(&mut line).unwrap();
            let mut s = &stream;
            s.write_all(
                b"{\"error\":\"server busy: connection limit 1 reached, retry later\",\"ok\":false,\"retry_after_ms\":100}\n",
            )
            .unwrap();
            s.flush().unwrap();
        }
        drop(stream);
        // connection 2: the slot freed up; full negotiation
        let (stream, _) = listener.accept().unwrap();
        let mut reader = BufReader::new(stream.try_clone().unwrap());
        let mut line = String::new();
        reader.read_line(&mut line).unwrap();
        assert!(line.contains("hello"), "{line}");
        let mut s = &stream;
        s.write_all(hello.as_bytes()).unwrap();
        s.write_all(b"\n").unwrap();
        s.flush().unwrap();
    });

    let started = std::time::Instant::now();
    let client = CwelmaxClient::connect(addr.to_string()).unwrap();
    assert_eq!(
        client.protocol(),
        2,
        "the retry negotiates a normal v2 session"
    );
    assert!(
        started.elapsed() >= std::time::Duration::from_millis(100),
        "the hint's back-off must actually be waited out"
    );
    server.join().unwrap();
}

/// A server that is *still* busy after the hinted back-off gets exactly
/// one retry — the second refusal surfaces as the final error, hint and
/// all, instead of looping.
#[test]
fn a_second_busy_refusal_after_the_hinted_retry_is_final() {
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    let refusal =
        b"{\"error\":\"server busy: connection limit 1 reached, retry later\",\"ok\":false,\"retry_after_ms\":50}\n";
    let server = std::thread::spawn(move || {
        for _ in 0..2 {
            let (stream, _) = listener.accept().unwrap();
            let mut reader = BufReader::new(stream.try_clone().unwrap());
            let mut line = String::new();
            reader.read_line(&mut line).unwrap();
            let mut s = &stream;
            s.write_all(refusal).unwrap();
            s.flush().unwrap();
        }
        // a third connection attempt would hang the test right here
    });
    match CwelmaxClient::connect(addr.to_string()) {
        Err(ClientError::Server(e)) => {
            assert!(e.message.contains("server busy"), "{e}");
            assert_eq!(e.retry_after_ms, Some(50), "the hint survives decoding");
        }
        Ok(c) => panic!("connect succeeded at protocol v{}", c.protocol()),
        Err(other) => panic!("expected Server error, got {other:?}"),
    }
    server.join().unwrap();
}

/// The typed `topup()` call against a real journaled-store server: the
/// feature is advertised, θ grows live, the journal counters appear in
/// typed stats, and queries keep answering on the same connection.
#[test]
fn topup_round_trips_typed_against_a_journaled_store_server() {
    let (graph, index) = graph_and_index();
    let theta0 = index.num_sampled();
    let dir = std::env::temp_dir().join(format!("cwelmax-client-topup-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    cwelmax_store::write_store(&index, &dir, 4).unwrap();
    let store = Arc::new(cwelmax_store::JournaledStore::open(&dir).unwrap());
    let engine = EngineBuilder::from_backend(store)
        .graph(graph)
        .build()
        .unwrap();
    let (handle, join) = start(engine);

    let mut client = CwelmaxClient::connect(handle.local_addr().to_string()).unwrap();
    assert!(
        client.has_feature("topup"),
        "a v2 server advertises the topup feature"
    );

    let before = client.stats().unwrap();
    assert_eq!(before.journal_records, 0);
    assert_eq!(before.topups_total, 0);

    let target = theta0 + 300;
    assert_eq!(client.topup(target).unwrap(), target as u64);
    // an already-satisfied target is a no-op that reports the population
    assert_eq!(client.topup(1).unwrap(), target as u64);

    let after = client.stats().unwrap();
    assert_eq!(after.journal_records, 1);
    assert_eq!(after.topups_total, 1);
    assert!(after.journal_bytes > 0);

    // the grown index keeps serving typed queries
    let answer = client
        .query(&query(TwoItemConfig::C1, 2, Allocation::new()))
        .unwrap();
    assert!(answer.welfare > 0.0);

    client.shutdown().unwrap();
    join.join().unwrap();
    std::fs::remove_dir_all(&dir).ok();
}

/// On a fallen-back v1 connection `topup()` fails fast with a protocol
/// error instead of sending a request v1 cannot answer.
#[test]
fn topup_fails_fast_on_a_v1_connection() {
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    let server = std::thread::spawn(move || {
        let (stream, _) = listener.accept().unwrap();
        let mut reader = BufReader::new(stream.try_clone().unwrap());
        let mut line = String::new();
        reader.read_line(&mut line).unwrap();
        let mut s = &stream;
        s.write_all(b"{\"error\":\"unknown request type `hello`\",\"ok\":false}\n")
            .unwrap();
        s.flush().unwrap();
    });
    let mut client = CwelmaxClient::connect(addr.to_string()).unwrap();
    assert_eq!(client.protocol(), 1);
    match client.topup(10_000) {
        Err(ClientError::Protocol(msg)) => {
            assert!(msg.contains("v2"), "error names the protocol gap: {msg}")
        }
        other => panic!("expected a protocol error, got {other:?}"),
    }
    server.join().unwrap();
}

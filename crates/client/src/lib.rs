//! # cwelmax-client
//!
//! A typed NDJSON-over-TCP client for `cwelmax-server` — the programmatic
//! counterpart to driving the socket by hand with `printf | nc`.
//!
//! ```no_run
//! use cwelmax_client::CwelmaxClient;
//! use cwelmax_engine::{CampaignQuery, QueryAlgorithm};
//! use cwelmax_utility::configs::{self, TwoItemConfig};
//!
//! # fn demo() -> Result<(), cwelmax_client::ClientError> {
//! let mut client = CwelmaxClient::connect("127.0.0.1:7878")?;
//! println!("negotiated protocol v{}", client.protocol());
//! let q = CampaignQuery::new(
//!     configs::two_item_config(TwoItemConfig::C1),
//!     vec![3, 3],
//!     QueryAlgorithm::SeqGrdNm,
//! );
//! let answer = client.query(&q)?;
//! println!("welfare {:.1} via {}", answer.welfare, answer.algorithm);
//! # Ok(())
//! # }
//! ```
//!
//! ## Protocol negotiation
//!
//! [`CwelmaxClient::connect`] sends `{"v": 2, "type": "hello"}` first.
//! A v2 server answers with its protocol, feature list, and version
//! ([`Hello`]); a pre-v2 server answers with an `unknown request type`
//! error, which the client treats as an automatic **v1 fallback** — the
//! same typed calls keep working, encoded in the legacy dialect (errors
//! then carry only a message, no stable code).
//!
//! ## Connection handling
//!
//! One persistent connection, request/response in lockstep. If the
//! socket dies mid-call (server restart, idle timeout, broken pipe), the
//! client transparently reconnects — and re-negotiates — **once** and
//! retries the request; a second failure surfaces as
//! [`ClientError::Io`]. Queries are idempotent (the engine is a pure
//! cache over immutable state), so the single retry is safe.
//!
//! ## Errors
//!
//! Transport failures are [`ClientError::Io`]; unintelligible responses
//! are [`ClientError::Protocol`]; a well-formed server-side refusal is
//! [`ClientError::Server`] carrying the structured [`ServerError`]
//! (`{code, kind, message, retryable}` on v2 — [`ServerError::kind`]
//! maps back to [`cwelmax_engine::ErrorKind`] via
//! [`ServerError::error_kind`]).

use cwelmax_engine::wire;
use cwelmax_engine::{CampaignQuery, ErrorKind};
pub use cwelmax_obs::{HistogramSnapshot, Snapshot as MetricsSnapshot, SpanNode, Trace};
use serde::{Deserialize, Map, Value};
use std::fmt;
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;

/// What the server told us in its `hello` response.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Hello {
    /// Negotiated wire protocol (2 for every v2 server).
    pub protocol: u64,
    /// Capability names (`"batch"`, `"sp"`, `"stats"`, `"store"`, …;
    /// append-only across versions).
    pub features: Vec<String>,
    /// The server build's crate version.
    pub server_version: String,
}

/// A structured server-side refusal. On v2 the code/kind/retryable
/// triple is the stable taxonomy from `cwelmax_engine::ErrorKind`; on v1
/// only the message is real (code 0, kind `"error"`, not retryable).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServerError {
    /// Stable numeric code (0 when the server spoke v1).
    pub code: u16,
    /// Stable kebab-case kind name (`"error"` when the server spoke v1).
    pub kind: String,
    /// Human-readable detail.
    pub message: String,
    /// Whether retrying the same request may succeed.
    pub retryable: bool,
    /// Server-suggested back-off before retrying, when it gave one (the
    /// accept-time busy refusal does; `None` everywhere else).
    pub retry_after_ms: Option<u64>,
}

impl ServerError {
    /// The typed classification, when the kind names one this build
    /// knows (`None` for v1 errors and future kinds).
    pub fn error_kind(&self) -> Option<ErrorKind> {
        ErrorKind::parse(&self.kind)
    }

    fn from_value(err: &Value) -> ServerError {
        match err {
            // v2: structured object
            Value::Object(m) => ServerError {
                code: match m.get("code") {
                    Some(Value::Int(x)) => *x as u16,
                    Some(Value::UInt(x)) => *x as u16,
                    _ => 0,
                },
                kind: m
                    .get("kind")
                    .and_then(|k| k.as_str())
                    .unwrap_or("error")
                    .to_string(),
                message: m
                    .get("message")
                    .and_then(|s| s.as_str())
                    .unwrap_or_default()
                    .to_string(),
                retryable: m.get("retryable") == Some(&Value::Bool(true)),
                retry_after_ms: None,
            },
            // v1: bare string
            Value::String(s) => ServerError {
                code: 0,
                kind: "error".into(),
                message: s.clone(),
                retryable: false,
                retry_after_ms: None,
            },
            other => ServerError {
                code: 0,
                kind: "error".into(),
                message: format!("unintelligible error payload: {other:?}"),
                retryable: false,
                retry_after_ms: None,
            },
        }
    }
}

impl fmt::Display for ServerError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{} {}] {}", self.code, self.kind, self.message)
    }
}

/// Everything a typed call can fail with.
#[derive(Debug)]
pub enum ClientError {
    /// The transport failed (including after the one reconnect retry).
    Io(std::io::Error),
    /// The server sent bytes this client cannot interpret.
    Protocol(String),
    /// The server understood the request and refused it.
    Server(ServerError),
}

impl fmt::Display for ClientError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "transport error: {e}"),
            ClientError::Protocol(msg) => write!(f, "protocol error: {msg}"),
            ClientError::Server(e) => write!(f, "server error: {e}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<std::io::Error> for ClientError {
    fn from(e: std::io::Error) -> Self {
        ClientError::Io(e)
    }
}

/// One answered campaign query, decoded from the wire.
#[derive(Debug, Clone)]
pub struct RemoteAnswer {
    /// Algorithm display name (e.g. `"SeqGRD-NM"`).
    pub algorithm: String,
    /// The newly selected `(node, item)` pairs.
    pub allocation: Vec<(u32, usize)>,
    /// The conditioning prior allocation (empty for fresh campaigns).
    pub sp: Vec<(u32, usize)>,
    /// Monte-Carlo welfare estimate of `allocation ∪ sp`.
    pub welfare: f64,
    /// Server-side handling time in seconds.
    pub elapsed_seconds: f64,
    /// The trace id the server recorded this request under (canonical
    /// 16-hex), echoed when the request was traced — client-pinned via
    /// [`CwelmaxClient::query_traced`], or server-sampled. `None` on
    /// untraced requests and every v1 answer.
    pub trace: Option<String>,
}

/// Server + engine counters from a `stats` request, decoded.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct RemoteStats {
    pub connections: u64,
    pub busy_rejections: u64,
    pub requests: u64,
    pub server_queries: u64,
    pub errors: u64,
    pub mean_latency_seconds: f64,
    pub engine_queries: u64,
    pub pool_selections: u64,
    pub welfare_evals: u64,
    pub welfare_cache_hits: u64,
    pub conditioned_views: u64,
    pub conditioned_hits: u64,
    pub shards_total: u64,
    pub shards_loaded: u64,
    pub store_bytes_on_disk: u64,
    /// Records in the mutation journal (0 on v1 and journal-less stores).
    pub journal_records: u64,
    /// Bytes of committed journal (0 on v1 and journal-less stores).
    pub journal_bytes: u64,
    /// θ top-ups served since bind (0 on v1 and journal-less stores).
    pub topups_total: u64,
}

/// A typed connection to a `cwelmax serve` instance. See the module
/// docs for negotiation and reconnect semantics.
pub struct CwelmaxClient {
    addr: String,
    conn: Conn,
    negotiated: Option<Hello>,
}

struct Conn {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl Conn {
    fn open(addr: &str) -> std::io::Result<Conn> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true).ok();
        Ok(Conn {
            reader: BufReader::new(stream.try_clone()?),
            writer: stream,
        })
    }

    /// One request line out, one response line in.
    fn roundtrip(&mut self, line: &str) -> std::io::Result<String> {
        self.writer.write_all(line.as_bytes())?;
        self.writer.write_all(b"\n")?;
        self.writer.flush()?;
        let mut response = String::new();
        let n = self.reader.read_line(&mut response)?;
        if n == 0 {
            return Err(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "server closed the connection",
            ));
        }
        Ok(response)
    }
}

/// Longest back-off `connect` will honor from a busy refusal's
/// `retry_after_ms` hint — a misbehaving (or hostile) server must not be
/// able to park the client for minutes.
const MAX_RETRY_AFTER_MS: u64 = 2_000;

impl CwelmaxClient {
    /// Connect and negotiate: hello first, automatic v1 fallback if the
    /// server rejects it (see the module docs). A busy refusal carrying
    /// a `retry_after_ms` hint is honored with **one** bounded back-off
    /// and reconnect (capped at [`MAX_RETRY_AFTER_MS`]); a second
    /// refusal surfaces as [`ClientError::Server`].
    pub fn connect(addr: impl Into<String>) -> Result<CwelmaxClient, ClientError> {
        let addr = addr.into();
        match Self::connect_once(&addr) {
            Err(ClientError::Server(err)) if err.retry_after_ms.is_some() => {
                let hint = err.retry_after_ms.unwrap_or(0).min(MAX_RETRY_AFTER_MS);
                std::thread::sleep(std::time::Duration::from_millis(hint));
                Self::connect_once(&addr)
            }
            other => other,
        }
    }

    fn connect_once(addr: &str) -> Result<CwelmaxClient, ClientError> {
        let mut conn = Conn::open(addr)?;
        let negotiated = Self::negotiate(&mut conn)?;
        Ok(CwelmaxClient {
            addr: addr.to_string(),
            conn,
            negotiated,
        })
    }

    fn negotiate(conn: &mut Conn) -> Result<Option<Hello>, ClientError> {
        let line = conn.roundtrip(r#"{"v": 2, "type": "hello"}"#)?;
        let v = parse_line(&line)?;
        let obj = object_of(&v)?;
        if obj.get("ok") == Some(&Value::Bool(true)) {
            return Self::negotiate_payload(obj);
        }
        // a pre-v2 server answers hello with exactly the unknown-type
        // error and keeps the connection alive — that *is* the v1
        // detection signal. Any OTHER error line here is a real refusal
        // (most importantly the accept-time `--max-conns` busy line,
        // which arrives before the server ever reads our hello) and must
        // surface, not masquerade as a v1 fallback on a dead socket.
        match failure_of(obj) {
            Some(err) if err.message.contains("unknown request type") => Ok(None),
            Some(err) => Err(ClientError::Server(err)),
            // a non-ok line with no error payload is a server this
            // client does not understand — a protocol error, not a panic
            None => Err(ClientError::Protocol(
                "non-ok hello response without an error payload".into(),
            )),
        }
    }

    /// The negotiated protocol version: 2 against a v2 server, 1 after
    /// the automatic fallback.
    pub fn protocol(&self) -> u64 {
        self.negotiated.as_ref().map_or(1, |h| h.protocol)
    }

    /// The server's `hello` payload, when it spoke v2.
    pub fn negotiated(&self) -> Option<&Hello> {
        self.negotiated.as_ref()
    }

    /// True when the server advertised `feature` (always false on v1 —
    /// a v1 server advertises nothing, even capabilities it has).
    pub fn has_feature(&self, feature: &str) -> bool {
        self.negotiated
            .as_ref()
            .is_some_and(|h| h.features.iter().any(|f| f == feature))
    }

    /// Re-issue `hello` explicitly (v2 servers only; on a v1 connection
    /// this reports the fallback as a [`ClientError::Server`]).
    pub fn hello(&mut self) -> Result<Hello, ClientError> {
        let v = self.request(r#"{"v": 2, "type": "hello"}"#.to_string())?;
        let obj = object_of(&v)?;
        if let Some(err) = failure_of(obj) {
            return Err(ClientError::Server(err));
        }
        self.negotiated = Self::negotiate_payload(obj)?;
        self.negotiated
            .clone()
            .ok_or_else(|| ClientError::Protocol("hello succeeded without a payload".into()))
    }

    fn negotiate_payload(obj: &Map) -> Result<Option<Hello>, ClientError> {
        let protocol = u64_of(obj.get("protocol"))
            .ok_or_else(|| ClientError::Protocol("hello response lacks `protocol`".into()))?;
        let features: Vec<String> = match obj.get("features") {
            Some(f) => Deserialize::from_value(f)
                .map_err(|e| ClientError::Protocol(format!("bad hello features: {e}")))?,
            None => Vec::new(),
        };
        Ok(Some(Hello {
            protocol,
            features,
            server_version: obj
                .get("server_version")
                .and_then(|s| s.as_str())
                .unwrap_or_default()
                .to_string(),
        }))
    }

    /// Answer one campaign query (fresh or SP-conditioned).
    pub fn query(&mut self, q: &CampaignQuery) -> Result<RemoteAnswer, ClientError> {
        self.query_inner(q, None)
    }

    /// [`CwelmaxClient::query`] under a client-originated trace id (wire
    /// v2 only): the server records the request's full span tree pinned
    /// past tail sampling, echoes the id on the answer
    /// ([`RemoteAnswer::trace`], canonical 16-hex), and retains the
    /// trace for [`CwelmaxClient::traces`] to fetch.
    pub fn query_traced(
        &mut self,
        q: &CampaignQuery,
        trace_id: u64,
    ) -> Result<RemoteAnswer, ClientError> {
        if self.negotiated.is_none() {
            return Err(ClientError::Protocol(
                "traced queries require wire protocol v2 (server negotiated v1)".into(),
            ));
        }
        self.query_inner(q, Some(trace_id))
    }

    fn query_inner(
        &mut self,
        q: &CampaignQuery,
        trace_id: Option<u64>,
    ) -> Result<RemoteAnswer, ClientError> {
        let Value::Object(mut obj) = wire::query_to_value(q) else {
            // query_to_value returns an object today; if that ever
            // changes, fail the one query instead of the process
            return Err(ClientError::Protocol(
                "query serialized to a non-object value".into(),
            ));
        };
        if self.negotiated.is_some() {
            obj.insert("v".into(), Value::UInt(wire::PROTOCOL_VERSION));
        }
        if let Some(id) = trace_id {
            obj.insert(
                "trace".into(),
                Value::String(cwelmax_obs::trace::format_trace_id(id)),
            );
        }
        let v = self.request(wire::to_line(&Value::Object(obj)))?;
        let obj = object_of(&v)?;
        if let Some(err) = failure_of(obj) {
            return Err(ClientError::Server(err));
        }
        answer_of(obj).map_err(ClientError::Protocol)
    }

    /// Answer many queries over one wire line (one entry per query, in
    /// order; per-entry failures do not fail the batch).
    pub fn query_batch(
        &mut self,
        queries: &[CampaignQuery],
    ) -> Result<Vec<Result<RemoteAnswer, ServerError>>, ClientError> {
        let mut m = Map::new();
        if self.negotiated.is_some() {
            m.insert("v".into(), Value::UInt(wire::PROTOCOL_VERSION));
        }
        m.insert("type".into(), Value::String("batch".into()));
        m.insert(
            "queries".into(),
            Value::Array(queries.iter().map(wire::query_to_value).collect()),
        );
        let v = self.request(wire::to_line(&Value::Object(m)))?;
        let obj = object_of(&v)?;
        if let Some(err) = failure_of(obj) {
            return Err(ClientError::Server(err));
        }
        let answers = obj
            .get("answers")
            .and_then(|a| a.as_array())
            .ok_or_else(|| ClientError::Protocol("batch response lacks `answers`".into()))?;
        if answers.len() != queries.len() {
            return Err(ClientError::Protocol(format!(
                "batch response has {} entries for {} queries",
                answers.len(),
                queries.len()
            )));
        }
        answers
            .iter()
            .map(|entry| {
                let obj = object_of(entry)?;
                Ok(match failure_of(obj) {
                    Some(err) => Err(err),
                    None => Ok(answer_of(obj).map_err(ClientError::Protocol)?),
                })
            })
            .collect()
    }

    /// Server + engine counters.
    pub fn stats(&mut self) -> Result<RemoteStats, ClientError> {
        let line = if self.negotiated.is_some() {
            r#"{"v": 2, "type": "stats"}"#
        } else {
            r#"{"type": "stats"}"#
        };
        let v = self.request(line.to_string())?;
        let obj = object_of(&v)?;
        if let Some(err) = failure_of(obj) {
            return Err(ClientError::Server(err));
        }
        let server = obj
            .get("server")
            .and_then(|s| s.as_object())
            .ok_or_else(|| ClientError::Protocol("stats response lacks `server`".into()))?;
        let engine = obj
            .get("engine")
            .and_then(|s| s.as_object())
            .ok_or_else(|| ClientError::Protocol("stats response lacks `engine`".into()))?;
        let g = |m: &Map, k: &str| u64_of(m.get(k)).unwrap_or(0);
        Ok(RemoteStats {
            connections: g(server, "connections"),
            busy_rejections: g(server, "busy_rejections"),
            requests: g(server, "requests"),
            server_queries: g(server, "queries"),
            errors: g(server, "errors"),
            mean_latency_seconds: f64_of(server.get("mean_latency_seconds")).unwrap_or(0.0),
            engine_queries: g(engine, "queries"),
            pool_selections: g(engine, "pool_selections"),
            welfare_evals: g(engine, "welfare_evals"),
            welfare_cache_hits: g(engine, "welfare_cache_hits"),
            conditioned_views: g(engine, "conditioned_views"),
            conditioned_hits: g(engine, "conditioned_hits"),
            shards_total: g(engine, "shards_total"),
            shards_loaded: g(engine, "shards_loaded"),
            store_bytes_on_disk: g(engine, "store_bytes_on_disk"),
            journal_records: g(engine, "journal_records"),
            journal_bytes: g(engine, "journal_bytes"),
            topups_total: g(engine, "topups_total"),
        })
    }

    /// Grow the server's sampled population to at least `theta` RR sets
    /// (wire v2 only; the server's backend must be a journaled store to
    /// accept a real deficit). Returns the population after the grow.
    /// Check [`CwelmaxClient::has_feature`]`("topup")` to probe support
    /// without a failing request.
    pub fn topup(&mut self, theta: usize) -> Result<u64, ClientError> {
        if self.negotiated.is_none() {
            return Err(ClientError::Protocol(
                "topup requires wire protocol v2 (server negotiated v1)".into(),
            ));
        }
        let mut m = Map::new();
        m.insert("v".into(), Value::UInt(wire::PROTOCOL_VERSION));
        m.insert("type".into(), Value::String("topup".into()));
        m.insert("theta".into(), Value::UInt(theta as u64));
        let v = self.request(wire::to_line(&Value::Object(m)))?;
        let obj = object_of(&v)?;
        if let Some(err) = failure_of(obj) {
            return Err(ClientError::Server(err));
        }
        u64_of(obj.get("theta"))
            .ok_or_else(|| ClientError::Protocol("topup response lacks `theta`".into()))
    }

    /// Scrape the server's full metrics registry (wire v2 only — the
    /// `"metrics"` request type does not exist in the v1 dialect, so a
    /// fallen-back connection fails fast instead of collecting the
    /// legacy unknown-type error). Check [`CwelmaxClient::has_feature`]
    /// with `"metrics"` to probe support without a failing request.
    pub fn metrics(&mut self) -> Result<MetricsSnapshot, ClientError> {
        if self.negotiated.is_none() {
            return Err(ClientError::Protocol(
                "metrics requires wire protocol v2 (server negotiated v1)".into(),
            ));
        }
        let v = self.request(r#"{"v": 2, "type": "metrics"}"#.to_string())?;
        let obj = object_of(&v)?;
        if let Some(err) = failure_of(obj) {
            return Err(ClientError::Server(err));
        }
        let payload = obj
            .get("metrics")
            .ok_or_else(|| ClientError::Protocol("metrics response lacks `metrics`".into()))?;
        MetricsSnapshot::from_value(payload)
            .ok_or_else(|| ClientError::Protocol("unintelligible metrics snapshot".into()))
    }

    /// Fetch the server's recently retained traces, newest first, up to
    /// `limit` (0 = everything retained). Wire v2 only, like
    /// [`CwelmaxClient::metrics`]; check
    /// [`CwelmaxClient::has_feature`]`("traces")` to probe support
    /// without a failing request.
    pub fn traces(&mut self, limit: usize) -> Result<Vec<Trace>, ClientError> {
        if self.negotiated.is_none() {
            return Err(ClientError::Protocol(
                "traces requires wire protocol v2 (server negotiated v1)".into(),
            ));
        }
        let mut m = Map::new();
        m.insert("v".into(), Value::UInt(wire::PROTOCOL_VERSION));
        m.insert("type".into(), Value::String("traces".into()));
        if limit > 0 {
            m.insert("limit".into(), Value::UInt(limit as u64));
        }
        let v = self.request(wire::to_line(&Value::Object(m)))?;
        let obj = object_of(&v)?;
        if let Some(err) = failure_of(obj) {
            return Err(ClientError::Server(err));
        }
        let traces = obj
            .get("traces")
            .and_then(|t| t.as_array())
            .ok_or_else(|| ClientError::Protocol("traces response lacks `traces`".into()))?;
        traces
            .iter()
            .map(|t| {
                Trace::from_value(t)
                    .ok_or_else(|| ClientError::Protocol("unintelligible trace payload".into()))
            })
            .collect()
    }

    /// Ask the server to stop gracefully (acknowledged before it does).
    pub fn shutdown(&mut self) -> Result<(), ClientError> {
        let line = if self.negotiated.is_some() {
            r#"{"v": 2, "type": "shutdown"}"#
        } else {
            r#"{"type": "shutdown"}"#
        };
        let v = self.request(line.to_string())?;
        let obj = object_of(&v)?;
        match failure_of(obj) {
            Some(err) => Err(ClientError::Server(err)),
            None => Ok(()),
        }
    }

    /// Send one line, read one line — reconnecting (and re-negotiating)
    /// once if the connection broke underneath us.
    fn request(&mut self, line: String) -> Result<Value, ClientError> {
        match self.conn.roundtrip(&line) {
            Ok(response) => parse_line(&response),
            Err(_) => {
                // the socket died (restart, idle reap, broken pipe):
                // reconnect once and retry; a fresh failure is real
                let mut conn = Conn::open(&self.addr)?;
                self.negotiated = Self::negotiate(&mut conn)?;
                self.conn = conn;
                let response = self.conn.roundtrip(&line)?;
                parse_line(&response)
            }
        }
    }
}

fn parse_line(line: &str) -> Result<Value, ClientError> {
    serde_json::from_str(line)
        .map_err(|e| ClientError::Protocol(format!("unparseable response line: {e}")))
}

fn object_of(v: &Value) -> Result<&Map, ClientError> {
    v.as_object()
        .ok_or_else(|| ClientError::Protocol(format!("expected a response object, got {v:?}")))
}

/// `Some(error)` when the response object reports failure.
fn failure_of(obj: &Map) -> Option<ServerError> {
    if obj.get("ok") == Some(&Value::Bool(true)) {
        return None;
    }
    let mut err = match obj.get("error") {
        Some(err) => ServerError::from_value(err),
        None => ServerError {
            code: 0,
            kind: "error".into(),
            message: "server reported failure without an error payload".into(),
            retryable: false,
            retry_after_ms: None,
        },
    };
    // the back-off hint rides at the top level of the refusal line, next
    // to the (byte-pinned) `error`/`ok` pair
    err.retry_after_ms = u64_of(obj.get("retry_after_ms"));
    Some(err)
}

fn answer_of(obj: &Map) -> Result<RemoteAnswer, String> {
    let allocation: Vec<(u32, usize)> = match obj.get("allocation") {
        Some(a) => Deserialize::from_value(a).map_err(|e| format!("bad allocation: {e}"))?,
        None => return Err("answer lacks `allocation`".into()),
    };
    let sp: Vec<(u32, usize)> = match obj.get("sp") {
        Some(s) => Deserialize::from_value(s).map_err(|e| format!("bad sp: {e}"))?,
        None => Vec::new(),
    };
    Ok(RemoteAnswer {
        algorithm: obj
            .get("algorithm")
            .and_then(|a| a.as_str())
            .unwrap_or_default()
            .to_string(),
        allocation,
        sp,
        welfare: f64_of(obj.get("welfare")).ok_or("answer lacks `welfare`")?,
        elapsed_seconds: f64_of(obj.get("elapsed_seconds")).unwrap_or(0.0),
        trace: obj
            .get("trace")
            .and_then(|t| t.as_str())
            .map(str::to_string),
    })
}

fn u64_of(v: Option<&Value>) -> Option<u64> {
    match v {
        Some(Value::UInt(x)) => Some(*x),
        Some(Value::Int(x)) if *x >= 0 => Some(*x as u64),
        _ => None,
    }
}

fn f64_of(v: Option<&Value>) -> Option<f64> {
    match v {
        Some(Value::Float(x)) => Some(*x),
        Some(Value::UInt(x)) => Some(*x as f64),
        Some(Value::Int(x)) => Some(*x as f64),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn server_error_decodes_v2_objects_and_v1_strings() {
        let v2: Value = serde_json::from_str(
            r#"{"code": 422, "kind": "bad-query", "message": "too big", "retryable": false}"#,
        )
        .unwrap();
        let e = ServerError::from_value(&v2);
        assert_eq!(e.code, 422);
        assert_eq!(e.kind, "bad-query");
        assert_eq!(e.error_kind(), Some(ErrorKind::BadQuery));
        assert!(!e.retryable);

        let e = ServerError::from_value(&Value::String("boom".into()));
        assert_eq!(e.code, 0);
        assert_eq!(e.kind, "error");
        assert_eq!(e.message, "boom");
        assert_eq!(e.error_kind(), None);
    }

    #[test]
    fn unknown_future_kinds_degrade_gracefully() {
        let v: Value = serde_json::from_str(
            r#"{"code": 599, "kind": "quantum-flux", "message": "??", "retryable": true}"#,
        )
        .unwrap();
        let e = ServerError::from_value(&v);
        assert_eq!(e.code, 599);
        assert_eq!(e.error_kind(), None, "unknown kinds parse, not panic");
        assert!(e.retryable);
    }

    #[test]
    fn answers_decode_with_and_without_sp() {
        let v: Value = serde_json::from_str(
            r#"{"ok": true, "algorithm": "SeqGRD-NM", "allocation": [[3, 0], [7, 1]],
                "welfare": 41.5, "elapsed_seconds": 0.002}"#,
        )
        .unwrap();
        let a = answer_of(v.as_object().unwrap()).unwrap();
        assert_eq!(a.allocation, vec![(3, 0), (7, 1)]);
        assert!(a.sp.is_empty());
        assert_eq!(a.welfare, 41.5);

        let v: Value = serde_json::from_str(
            r#"{"ok": true, "algorithm": "MaxGRD", "allocation": [[1, 0]],
                "sp": [[9, 1]], "welfare": 7.0, "elapsed_seconds": 0.001}"#,
        )
        .unwrap();
        let a = answer_of(v.as_object().unwrap()).unwrap();
        assert_eq!(a.sp, vec![(9, 1)]);
    }
}

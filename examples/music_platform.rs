//! The paper's motivating scenario (§1, §6.4): a music streaming platform
//! recommends songs from four competing genres and wants to maximize the
//! total listener satisfaction (social welfare), not raw adoption counts.
//!
//! The pipeline mirrors §6.4.1 end to end:
//! 1. generate synthetic listening logs from the published Table-5 adoption
//!    probabilities (the real Last.fm dump is not redistributable);
//! 2. learn per-genre utilities back from the logs with the discrete-choice
//!    estimator (`v_i = ln(10000 · p_i)`);
//! 3. run SeqGRD-NM against Round-robin/Snake on a NetHEPT-sized network
//!    and report per-genre adoptions and welfare (the Table-6 comparison).
//!
//! Run with: `cargo run --release --example music_platform`

use cwelmax::core::baselines::{RoundRobin, Snake};
use cwelmax::graph::generators::benchmark::Network;
use cwelmax::prelude::*;
use cwelmax::utility::itemset::all_itemsets;
use cwelmax::utility::learn;
use rand::rngs::SmallRng;
use rand::SeedableRng;

fn main() {
    // --- 1. synthetic listening logs from the published ground truth ----
    let truth = learn::lastfm_choice_model();
    let mut rng = SmallRng::seed_from_u64(2020);
    let logs = learn::generate_logs(&truth, 200_000, &mut rng);
    println!("generated {} listening-log entries", logs.len());

    // --- 2. learn utilities back --------------------------------------
    let total_mass: f64 = all_itemsets(4)
        .filter(|s| !s.is_empty())
        .map(|s| truth.bundle_prob(s))
        .sum();
    let learned = learn::estimate_from_logs(4, &logs, total_mass);
    println!(
        "\n{:<20} {:>8} {:>8} {:>8}",
        "genre", "p (true)", "p (est)", "utility"
    );
    for (g, name) in configs::LASTFM_GENRES.iter().enumerate() {
        println!(
            "{:<20} {:>8.3} {:>8.3} {:>8.2}",
            name,
            truth.item_probs[g],
            learned.item_probs[g],
            learned.utility(ItemSet::singleton(g)),
        );
    }

    // --- 3. welfare maximization on the platform's network -------------
    // learned singleton utilities drive the pure-competition model
    let singles: Vec<f64> = (0..4)
        .map(|g| learned.utility(ItemSet::singleton(g)))
        .collect();
    let model = configs::lastfm_from_singles(&singles);
    let graph = Network::NetHept.tiny_spec().generate();
    let problem = Problem::new(graph, model)
        .with_uniform_budget(10)
        .with_mc_samples(500);

    println!(
        "\n{:<12} {:>9} {:>24}",
        "algorithm", "welfare", "adoptions per genre"
    );
    for solution in [
        SeqGrd::new(SeqGrdMode::NoMarginal).solve(&problem),
        RoundRobin.solve(&problem),
        Snake.solve(&problem),
    ] {
        let r = problem.evaluate_report(&solution.allocation);
        let counts: Vec<String> = r
            .adoption_counts
            .iter()
            .map(|c| format!("{c:.0}"))
            .collect();
        println!(
            "{:<12} {:>9.1} {:>24}",
            solution.algorithm,
            r.welfare,
            counts.join(" / "),
        );
    }
    println!(
        "\nSeqGRD-NM shifts adoptions toward the high-utility genres while \
         keeping the total adoption count — the §6.4.3 observation."
    );
}

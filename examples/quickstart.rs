//! Quickstart: a fresh two-item competitive campaign.
//!
//! Builds a mid-sized scale-free network, configures the paper's C1 utility
//! setting (two purely competing items of comparable utility), solves with
//! SeqGRD-NM and compares against the TCIM adoption-count baseline.
//!
//! Run with: `cargo run --release --example quickstart`

use cwelmax::core::baselines::Tcim;
use cwelmax::graph::generators::{preferential_attachment, PaParams};
use cwelmax::prelude::*;

fn main() {
    // 1. The social network G = (V, E, p): 5 000 nodes, heavy-tailed
    //    degrees, weighted-cascade probabilities p(u,v) = 1/din(v).
    let graph = preferential_attachment(
        PaParams {
            n: 5_000,
            edges_per_node: 3,
            directed: true,
            seed: 42,
        },
        ProbabilityModel::WeightedCascade,
    );
    println!(
        "network: {} nodes, {} edges",
        graph.num_nodes(),
        graph.num_edges()
    );

    // 2. The utility model: configuration C1 of the paper (Table 3).
    //    U(i) = 1, U(j) = 0.9, bundle {i,j} negative → pure competition.
    let model = configs::two_item_config(TwoItemConfig::C1);
    println!(
        "items: U(i)={:.2} U(j)={:.2} U({{i,j}})={:.2}",
        model.deterministic_utility(ItemSet::singleton(0)),
        model.deterministic_utility(ItemSet::singleton(1)),
        model.deterministic_utility(ItemSet::full(2)),
    );

    // 3. The CWelMax instance: budget 20 per item, fresh campaign (SP = ∅).
    let problem = Problem::new(graph, model)
        .with_uniform_budget(20)
        .with_mc_samples(1_000);

    // 4. Solve and evaluate.
    for solution in [
        SeqGrd::new(SeqGrdMode::NoMarginal).solve(&problem),
        SeqGrd::new(SeqGrdMode::Marginal).solve(&problem),
        Tcim.solve(&problem),
    ] {
        let report = problem.evaluate_report(&solution.allocation);
        println!(
            "{:<12} welfare {:8.1}  adoptions i/j {:6.0}/{:6.0}  solve time {:?}",
            solution.algorithm,
            report.welfare,
            report.adoption_counts[0],
            report.adoption_counts[1],
            solution.elapsed,
        );
    }
}

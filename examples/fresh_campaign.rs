//! A fresh multi-item campaign with item blocking (§6.3.2 / Fig. 6c).
//!
//! Three items with the Table-4 utility configuration: `i` dominates
//! (U = 2), `j` and `k` are marginal (U ≈ 0.1), `i` and `k` are soft
//! competitors (the bundle `{i,k}` is worth 2.1) while every other bundle
//! is negative. Allocating `j` next to `i`'s seeds *blocks* `i`'s
//! propagation and destroys welfare; SeqGRD's marginal check detects this
//! and postpones `j`, while SeqGRD-NM walks straight into it.
//!
//! Run with: `cargo run --release --example fresh_campaign`

use cwelmax::core::{best_of, MaxGrd};
use cwelmax::graph::generators::benchmark::Network;
use cwelmax::prelude::*;

fn main() {
    let graph = Network::NetHept.tiny_spec().generate();
    let model = configs::three_item_blocking();
    println!(
        "items: U(i)={:.2} U(j)={:.2} U(k)={:.2} U({{i,k}})={:.2}, other bundles < 0",
        model.deterministic_utility(ItemSet::singleton(0)),
        model.deterministic_utility(ItemSet::singleton(1)),
        model.deterministic_utility(ItemSet::singleton(2)),
        model.deterministic_utility(ItemSet::from_items([0, 2])),
    );

    // budgets as in Fig. 6(c): a big budget for i, growing budgets for j, k
    for bj in [20, 60, 100] {
        let problem = Problem::new(graph.clone(), model.clone())
            .with_budgets(vec![100, bj, bj])
            .with_mc_samples(400);

        let nm = SeqGrd::new(SeqGrdMode::NoMarginal).solve(&problem);
        let full = SeqGrd::new(SeqGrdMode::Marginal).solve(&problem);
        let mx = MaxGrd.solve(&problem);
        let combo = best_of(&problem, SeqGrd::new(SeqGrdMode::Marginal));

        println!("\nbudget of j,k = {bj}:");
        for (s, w) in [
            (&nm, problem.evaluate(&nm.allocation)),
            (&full, problem.evaluate(&full.allocation)),
            (&mx, problem.evaluate(&mx.allocation)),
            (&combo, problem.evaluate(&combo.allocation)),
        ] {
            println!(
                "  {:<18} welfare {:9.1}   ({:.2?})",
                s.algorithm, w, s.elapsed
            );
        }
    }
    println!(
        "\nAs the j/k budgets grow, blocking intensifies and the gap between \
         SeqGRD (marginal check) and SeqGRD-NM widens — Fig. 6(c)'s shape."
    );
}

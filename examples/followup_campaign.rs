//! A follow-up campaign on top of an existing one (§6.2.3 / Fig. 5): the
//! host has already seeded an inferior item `j` (top spreaders chosen with
//! IMM, exactly as the paper fixes C5/C6's inferior seeds) and now
//! allocates the superior item `i`'s seeds to maximize total welfare.
//!
//! SupGRD's weighted RR sets navigate both regimes:
//! * C6 (large utility gap) — displacing `j` at the very top spreaders is
//!   worth it, so SupGRD re-contests them;
//! * C5 (near-tied utilities) — displacement gains almost nothing, so the
//!   budget goes to uncovered regions instead.
//!
//! The second half serves the same follow-up **warm**: a prebuilt
//! standard RR-set index is filtered into an SP-conditioned view
//! (`cwelmax-engine`), so repeated follow-up queries against the fixed
//! allocation never resample.
//!
//! Run with: `cargo run --release --example followup_campaign`

use cwelmax::core::SupGrd;
use cwelmax::engine::{CampaignQuery, EngineBuilder, QueryAlgorithm, RrIndex};
use cwelmax::graph::generators::{preferential_attachment, PaParams};
use cwelmax::prelude::*;
use cwelmax::rrset::imm::imm_select;
use cwelmax::rrset::{ImmParams, StandardRr};
use cwelmax::utility::configs::SupConfig;
use std::sync::Arc;

fn main() {
    let graph = preferential_attachment(
        PaParams {
            n: 8_000,
            edges_per_node: 4,
            directed: true,
            seed: 11,
        },
        ProbabilityModel::WeightedCascade,
    );

    // the existing campaign: inferior item j on the IMM top-20 spreaders
    let imm_params = ImmParams::default();
    let top = imm_select(&graph, &StandardRr, 20, &imm_params);
    let fixed = Allocation::from_item_seeds(1, &top.seeds);
    println!(
        "existing campaign: item j fixed on IMM top-{} seeds",
        fixed.len()
    );

    for (name, cfg) in [
        ("C5 (gap 1.0 vs 0.9)", SupConfig::C5),
        ("C6 (gap 1.0 vs 0.1)", SupConfig::C6),
    ] {
        let model = configs::supgrd_config(cfg);
        let problem = Problem::new(graph.clone(), model)
            .with_budgets(vec![20, 0])
            .with_fixed_allocation(fixed.clone())
            .with_mc_samples(500);

        match SupGrd::check_conditions(&problem) {
            Ok(im) => println!("\n{name}: superior item detected = i{im}"),
            Err(why) => println!("\n{name}: conditions violated: {why:?}"),
        }

        let sup = SupGrd.solve(&problem);
        let seq = SeqGrd::new(SeqGrdMode::NoMarginal).solve(&problem);
        let overlap = sup
            .allocation
            .seeds_of(0)
            .iter()
            .filter(|v| top.seeds.contains(v))
            .count();
        println!(
            "  SupGRD    welfare {:9.1}  (re-contests {overlap}/20 of j's seeds, {:?})",
            problem.evaluate(&sup.allocation),
            sup.elapsed,
        );
        println!(
            "  SeqGRD-NM welfare {:9.1}  ({:?})",
            problem.evaluate(&seq.allocation),
            seq.elapsed,
        );
    }

    // --- the serving path: the same follow-up, warm -----------------------
    // Build the standard index once (the expensive step a real deployment
    // does offline with `cwelmax index build`), then answer SP-conditioned
    // campaigns from it with zero resampling.
    let graph = Arc::new(graph);
    println!("\nbuilding RR-set index for warm follow-up serving…");
    let index = Arc::new(RrIndex::build(&graph, 20, &imm_params));
    let engine = EngineBuilder::from_index(index)
        .graph(graph)
        .build()
        .unwrap();

    let query = CampaignQuery::new(
        configs::two_item_config(configs::TwoItemConfig::C1),
        vec![20, 20],
        QueryAlgorithm::SeqGrdNm,
    )
    .with_sp(fixed.clone())
    .with_samples(500);

    let first = engine.query(&query).unwrap(); // derives + caches the view
    let repeat = engine.query(&query).unwrap(); // served from the view cache
    assert_eq!(first.allocation, repeat.allocation);
    println!(
        "warm follow-up: welfare {:.1}; first query (view derivation) {:?}, \
         repeat {:?} — conditioned views {} / cache hits {}",
        repeat.welfare,
        first.elapsed,
        repeat.elapsed,
        engine.stats().conditioned_views,
        engine.stats().conditioned_hits,
    );
}

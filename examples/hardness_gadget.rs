//! The Theorem-2 inapproximability gadget, executable.
//!
//! Builds the SET-COVER reduction network (Fig. 2) with the Table-1 utility
//! configuration and shows the welfare gap the proof engineers: on a
//! YES-instance, seeding item `i1` on the covering subsets blocks the
//! bundle `{i2,i3}` everywhere and the `d` sink nodes adopt the
//! high-utility `{i1,i4}`; on a NO-instance the bundle wins the race and
//! the welfare collapses below `c · N² · U({i1,i4})` for `c = 0.4`.
//!
//! Run with: `cargo run --release --example hardness_gadget`

use cwelmax::graph::generators::gadget::{build_gadget, example_no_instance, example_yes_instance};
use cwelmax::prelude::*;

fn main() {
    // the proof takes N > max{k/c, 8n/c} = 80 for n = 4, c = 0.4; the d
    // sink population N² must dominate the O(N·n) side-structures
    let copies = 90;
    let d_per_copy = 90;

    for (label, sc) in [
        ("YES-instance (k=2 covers)", example_yes_instance()),
        ("NO-instance  (k=1 cannot)", example_no_instance()),
    ] {
        let k = sc.k;
        let decided_yes = sc.is_yes_instance();
        let gi = build_gadget(sc, copies, d_per_copy);
        let model = configs::hardness_table1();

        // fixed seeds exactly as the reduction prescribes
        let mut fixed = Allocation::new();
        for &a in &gi.a_nodes {
            fixed.add(a, 1); // i2
        }
        for &b in &gi.b_nodes {
            fixed.add(b, 2); // i3
        }
        for &j in &gi.j_nodes {
            fixed.add(j, 3); // i4
        }

        // the best k-subset of s-nodes for item i1 (exhaustive: tiny r)
        let problem = Problem::new(gi.graph.clone(), model)
            .with_budgets(vec![k, 0, 0, 0])
            .with_fixed_allocation(fixed)
            .with_mc_samples(1); // deterministic gadget: one world suffices

        let mut best = (f64::NEG_INFINITY, Vec::new());
        let r = gi.s_nodes.len();
        for choice in k_subsets(r, k) {
            let alloc = Allocation::from_item_seeds(
                0,
                &choice.iter().map(|&s| gi.s_nodes[s]).collect::<Vec<_>>(),
            );
            let w = problem.evaluate(&alloc);
            if w > best.0 {
                best = (w, choice);
            }
        }

        let n_d = (copies * gi.d_per_copy) as f64;
        let u14 = problem
            .model
            .deterministic_utility(ItemSet::from_items([0, 3]));
        let threshold = 0.4 * n_d * u14;
        println!(
            "{label}: decided_yes={decided_yes}  optimal welfare {:9.1}  \
             threshold c·N²·U({{i1,i4}}) = {threshold:9.1}  → {}",
            best.0,
            if best.0 > threshold {
                "ABOVE (YES)"
            } else {
                "below (NO)"
            },
        );
        println!("  best i1 seeds: subsets {:?}", best.1);
    }
    println!(
        "\nThe gap is what makes a constant-factor approximation decide SET \
         COVER — hence CWelMax is NP-hard to approximate (Theorem 2)."
    );
}

/// All k-subsets of 0..r.
fn k_subsets(r: usize, k: usize) -> Vec<Vec<usize>> {
    let mut out = Vec::new();
    let mut cur = Vec::new();
    fn rec(r: usize, k: usize, start: usize, cur: &mut Vec<usize>, out: &mut Vec<Vec<usize>>) {
        if cur.len() == k {
            out.push(cur.clone());
            return;
        }
        for s in start..r {
            cur.push(s);
            rec(r, k, s + 1, cur, out);
            cur.pop();
        }
    }
    rec(r, k, 0, &mut cur, &mut out);
    out
}

//! Drive a `cwelmax serve` instance with the **typed client** — no
//! hand-rolled JSON, no `printf | nc`: connect, negotiate protocol v2,
//! run a fresh campaign, an SP-conditioned follow-up, a batch, and read
//! the server's stats, all through `cwelmax_client::CwelmaxClient`.
//!
//! Two modes:
//!
//! * `cargo run --release --example remote_campaign` — self-contained:
//!   builds a small index, starts a server in-process on an ephemeral
//!   port, then talks to it over real TCP and cross-checks every answer
//!   against the in-process engine (bit-identical welfare).
//! * `CWELMAX_ADDR=host:port cargo run --release --example
//!   remote_campaign` — drives an already-running server (e.g.
//!   `cwelmax serve --store …`) instead; used by CI to assert a
//!   negotiated v2 session against the real binary. The remote server is
//!   left running.

use cwelmax::client::CwelmaxClient;
use cwelmax::diffusion::SimulationConfig;
use cwelmax::engine::{CampaignQuery, EngineBuilder, QueryAlgorithm, RrIndex};
use cwelmax::prelude::*;
use cwelmax::rrset::ImmParams;
use std::sync::Arc;

fn query(cfg: TwoItemConfig, budget: usize, sp: Allocation) -> CampaignQuery {
    CampaignQuery {
        model: configs::two_item_config(cfg),
        budgets: vec![budget, budget],
        algorithm: QueryAlgorithm::SeqGrdNm,
        sp,
        sim: SimulationConfig {
            samples: 100,
            threads: 1,
            base_seed: 0x5EED,
        },
    }
}

fn drive(client: &mut CwelmaxClient) {
    match client.negotiated() {
        Some(hello) => println!(
            "negotiated protocol v{} (server {}, features: {})",
            hello.protocol,
            hello.server_version,
            hello.features.join(", ")
        ),
        None => println!("server predates v2; fell back to protocol v1"),
    }

    // a fresh two-item campaign
    let fresh = query(TwoItemConfig::C1, 2, Allocation::new());
    let answer = client.query(&fresh).expect("fresh query");
    println!(
        "fresh campaign: welfare {:.2} via {} -> {:?}",
        answer.welfare, answer.algorithm, answer.allocation
    );

    // a follow-up conditioned on item 1 already seeded at node 0 — the
    // server serves it from an SP-conditioned index view, zero resampling
    let follow = query(TwoItemConfig::C1, 2, Allocation::from_pairs(vec![(0, 1)]));
    let answer = client.query(&follow).expect("follow-up query");
    println!(
        "follow-up (sp {:?}): welfare {:.2} -> {:?}",
        answer.sp, answer.welfare, answer.allocation
    );

    // a batch answered over one wire line, per-entry results
    let rows = client.query_batch(&[fresh, follow]).expect("batch request");
    for (k, row) in rows.iter().enumerate() {
        match row {
            Ok(a) => println!("batch[{k}]: welfare {:.2}", a.welfare),
            Err(e) => println!("batch[{k}]: refused: {e}"),
        }
    }

    let stats = client.stats().expect("stats request");
    println!(
        "server stats: {} queries, {} welfare evals ({} cache hits), \
         {} conditioned views ({} hits), {}/{} shards loaded",
        stats.server_queries,
        stats.welfare_evals,
        stats.welfare_cache_hits,
        stats.conditioned_views,
        stats.conditioned_hits,
        stats.shards_loaded,
        stats.shards_total,
    );
}

fn main() {
    if let Ok(addr) = std::env::var("CWELMAX_ADDR") {
        // remote mode: drive an already-running server and leave it up
        println!("connecting to {addr}…");
        let mut client = CwelmaxClient::connect(addr).expect("connect");
        drive(&mut client);
        return;
    }

    // self-contained mode: index + server in-process, client over TCP
    println!("building a small index and starting an in-process server…");
    let graph = Arc::new(cwelmax::graph::generators::erdos_renyi(
        200,
        800,
        7,
        ProbabilityModel::WeightedCascade,
    ));
    let params = ImmParams {
        threads: 0,
        max_rr_sets: 500_000,
        ..Default::default()
    };
    let index = Arc::new(RrIndex::build(&graph, 8, &params));
    let reference = EngineBuilder::from_index(index.clone())
        .graph(graph.clone())
        .build()
        .expect("reference engine");
    let served = EngineBuilder::from_index(index)
        .graph(graph)
        .build()
        .expect("served engine");
    let server = CampaignServer::bind(Arc::new(served), "127.0.0.1:0").expect("bind");
    let handle = server.handle();
    let join = std::thread::spawn(move || server.run().expect("server run"));

    let mut client = CwelmaxClient::connect(handle.local_addr().to_string()).expect("connect");
    drive(&mut client);

    // the typed path is transparent: remote answers are bit-identical to
    // in-process engine calls for the same query
    let q = query(TwoItemConfig::C2, 3, Allocation::new());
    let remote = client.query(&q).expect("remote query");
    let local = reference.query(&q).expect("local query");
    assert_eq!(remote.allocation, local.allocation.pairs());
    assert_eq!(remote.welfare.to_bits(), local.welfare.to_bits());
    println!(
        "cross-check: remote welfare {:.4} == in-process welfare {:.4} (bit-identical)",
        remote.welfare, local.welfare
    );

    client.shutdown().expect("shutdown");
    join.join().expect("server thread");
    println!("server shut down cleanly");
}

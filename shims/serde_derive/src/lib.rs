//! `#[derive(Serialize, Deserialize)]` for the offline serde shim.
//!
//! Hand-rolled (no `syn`/`quote` available offline): the input item is
//! parsed by walking the token trees, and the impl is generated as a source
//! string re-parsed into a `TokenStream`. Supports exactly the shapes this
//! workspace derives on:
//!
//! * non-generic structs with named fields;
//! * non-generic enums with unit, tuple and struct variants
//!   (externally-tagged representation, matching serde's default).
//!
//! Unsupported shapes (generics, tuple structs, `#[serde(...)]` attributes)
//! fail the build with a clear message rather than mis-serializing.

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[derive(Debug)]
enum Fields {
    Named(Vec<String>),
    Tuple(usize),
    Unit,
}

#[derive(Debug)]
struct Variant {
    name: String,
    fields: Fields,
}

#[derive(Debug)]
enum Item {
    Struct {
        name: String,
        fields: Vec<String>,
    },
    TupleStruct {
        name: String,
        arity: usize,
    },
    Enum {
        name: String,
        variants: Vec<Variant>,
    },
}

fn is_punct(t: &TokenTree, c: char) -> bool {
    matches!(t, TokenTree::Punct(p) if p.as_char() == c)
}

/// Skip leading `#[...]` attributes and `pub` / `pub(...)` visibility.
fn skip_attrs_and_vis(toks: &[TokenTree], mut i: usize) -> usize {
    loop {
        if i < toks.len() && is_punct(&toks[i], '#') {
            // `#` `[...]`
            i += 2;
            continue;
        }
        if let Some(TokenTree::Ident(id)) = toks.get(i) {
            if id.to_string() == "pub" {
                i += 1;
                if matches!(toks.get(i), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
                {
                    i += 1;
                }
                continue;
            }
        }
        return i;
    }
}

/// Starting at a field type (after the `:`), advance past it: consume until
/// a comma at angle-bracket depth 0. Returns the index of the comma (or end).
fn skip_type(toks: &[TokenTree], mut i: usize) -> usize {
    let mut angle = 0i32;
    while i < toks.len() {
        match &toks[i] {
            TokenTree::Punct(p) if p.as_char() == '<' => angle += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => angle -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && angle == 0 => return i,
            _ => {}
        }
        i += 1;
    }
    i
}

/// Parse `name: Type, ...` named-field bodies; returns field names.
fn parse_named_fields(stream: TokenStream) -> Vec<String> {
    let toks: Vec<TokenTree> = stream.into_iter().collect();
    let mut out = Vec::new();
    let mut i = 0;
    while i < toks.len() {
        i = skip_attrs_and_vis(&toks, i);
        if i >= toks.len() {
            break;
        }
        match &toks[i] {
            TokenTree::Ident(id) => out.push(id.to_string()),
            other => panic!("serde shim derive: expected field name, got `{other}`"),
        }
        i += 1; // name
        assert!(
            i < toks.len() && is_punct(&toks[i], ':'),
            "serde shim derive: expected `:` after field name"
        );
        i += 1; // colon
        i = skip_type(&toks, i);
        i += 1; // comma (or past end)
    }
    out
}

/// Count fields of a tuple-variant `( ... )` body.
fn tuple_arity(stream: TokenStream) -> usize {
    let toks: Vec<TokenTree> = stream.into_iter().collect();
    if toks.is_empty() {
        return 0;
    }
    let mut arity = 0;
    let mut i = 0;
    while i < toks.len() {
        i = skip_attrs_and_vis(&toks, i);
        if i >= toks.len() {
            break;
        }
        arity += 1;
        i = skip_type(&toks, i);
        i += 1;
    }
    arity
}

fn parse_variants(stream: TokenStream) -> Vec<Variant> {
    let toks: Vec<TokenTree> = stream.into_iter().collect();
    let mut out = Vec::new();
    let mut i = 0;
    while i < toks.len() {
        i = skip_attrs_and_vis(&toks, i);
        if i >= toks.len() {
            break;
        }
        let name = match &toks[i] {
            TokenTree::Ident(id) => id.to_string(),
            other => panic!("serde shim derive: expected variant name, got `{other}`"),
        };
        i += 1;
        let fields = match toks.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let a = tuple_arity(g.stream());
                i += 1;
                Fields::Tuple(a)
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let f = parse_named_fields(g.stream());
                i += 1;
                Fields::Named(f)
            }
            _ => Fields::Unit,
        };
        // skip optional `= discriminant`
        if matches!(toks.get(i), Some(t) if is_punct(t, '=')) {
            i += 1;
            while i < toks.len() && !is_punct(&toks[i], ',') {
                i += 1;
            }
        }
        if matches!(toks.get(i), Some(t) if is_punct(t, ',')) {
            i += 1;
        }
        out.push(Variant { name, fields });
    }
    out
}

fn parse_item(input: TokenStream) -> Item {
    let toks: Vec<TokenTree> = input.into_iter().collect();
    let mut i = skip_attrs_and_vis(&toks, 0);
    let kind = match &toks[i] {
        TokenTree::Ident(id) => id.to_string(),
        other => panic!("serde shim derive: expected `struct` or `enum`, got `{other}`"),
    };
    i += 1;
    let name = match &toks[i] {
        TokenTree::Ident(id) => id.to_string(),
        other => panic!("serde shim derive: expected type name, got `{other}`"),
    };
    i += 1;
    if matches!(toks.get(i), Some(t) if is_punct(t, '<')) {
        panic!("serde shim derive: generic types are not supported (type `{name}`)");
    }
    match kind.as_str() {
        "struct" => match toks.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => Item::Struct {
                name,
                fields: parse_named_fields(g.stream()),
            },
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Item::TupleStruct {
                    name,
                    arity: tuple_arity(g.stream()),
                }
            }
            _ => panic!("serde shim derive: unit structs are not supported (type `{name}`)"),
        },
        "enum" => match toks.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => Item::Enum {
                name,
                variants: parse_variants(g.stream()),
            },
            _ => panic!("serde shim derive: malformed enum `{name}`"),
        },
        other => panic!("serde shim derive: cannot derive for `{other}` items"),
    }
}

fn xs(n: usize) -> Vec<String> {
    (0..n).map(|k| format!("__x{k}")).collect()
}

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let body = match parse_item(input) {
        Item::Struct { name, fields } => {
            let inserts: String = fields
                .iter()
                .map(|f| {
                    format!(
                        "__m.insert(::std::string::String::from(\"{f}\"), \
                         ::serde::Serialize::to_value(&self.{f}));"
                    )
                })
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::Value {{\n\
                         let mut __m = ::serde::Map::new();\n\
                         {inserts}\n\
                         ::serde::Value::Object(__m)\n\
                     }}\n\
                 }}"
            )
        }
        Item::TupleStruct { name, arity } => {
            let body = match arity {
                // newtype: serialize transparently as the inner value
                1 => "::serde::Serialize::to_value(&self.0)".to_string(),
                n => {
                    let elems: Vec<String> = (0..n)
                        .map(|k| format!("::serde::Serialize::to_value(&self.{k})"))
                        .collect();
                    format!("::serde::Value::Array(vec![{}])", elems.join(", "))
                }
            };
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::Value {{ {body} }}\n\
                 }}"
            )
        }
        Item::Enum { name, variants } => {
            let arms: String = variants
                .iter()
                .map(|v| {
                    let vn = &v.name;
                    match &v.fields {
                        Fields::Unit => format!(
                            "{name}::{vn} => ::serde::Value::String(\
                             ::std::string::String::from(\"{vn}\")),"
                        ),
                        Fields::Tuple(1) => format!(
                            "{name}::{vn}(__x0) => {{\n\
                                 let mut __m = ::serde::Map::new();\n\
                                 __m.insert(::std::string::String::from(\"{vn}\"), \
                                     ::serde::Serialize::to_value(__x0));\n\
                                 ::serde::Value::Object(__m)\n\
                             }}"
                        ),
                        Fields::Tuple(n) => {
                            let vars = xs(*n);
                            let elems: Vec<String> = vars
                                .iter()
                                .map(|x| format!("::serde::Serialize::to_value({x})"))
                                .collect();
                            format!(
                                "{name}::{vn}({binds}) => {{\n\
                                     let mut __m = ::serde::Map::new();\n\
                                     __m.insert(::std::string::String::from(\"{vn}\"), \
                                         ::serde::Value::Array(vec![{elems}]));\n\
                                     ::serde::Value::Object(__m)\n\
                                 }}",
                                binds = vars.join(", "),
                                elems = elems.join(", ")
                            )
                        }
                        Fields::Named(fs) => {
                            let inserts: String = fs
                                .iter()
                                .map(|f| {
                                    format!(
                                        "__inner.insert(::std::string::String::from(\"{f}\"), \
                                         ::serde::Serialize::to_value({f}));"
                                    )
                                })
                                .collect();
                            format!(
                                "{name}::{vn} {{ {binds} }} => {{\n\
                                     let mut __inner = ::serde::Map::new();\n\
                                     {inserts}\n\
                                     let mut __m = ::serde::Map::new();\n\
                                     __m.insert(::std::string::String::from(\"{vn}\"), \
                                         ::serde::Value::Object(__inner));\n\
                                     ::serde::Value::Object(__m)\n\
                                 }}",
                                binds = fs.join(", ")
                            )
                        }
                    }
                })
                .collect::<Vec<_>>()
                .join("\n");
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::Value {{\n\
                         match self {{\n{arms}\n}}\n\
                     }}\n\
                 }}"
            )
        }
    };
    body.parse()
        .expect("serde shim derive: generated Serialize impl must parse")
}

#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let body = match parse_item(input) {
        Item::Struct { name, fields } => {
            let inits: String = fields
                .iter()
                .map(|f| format!("{f}: ::serde::field(__m, \"{f}\")?,"))
                .collect();
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn from_value(__v: &::serde::Value) \
                         -> ::std::result::Result<Self, ::serde::Error> {{\n\
                         let __m = __v.as_object().ok_or_else(|| \
                             ::serde::Error::custom(format!(\
                                 \"expected object for struct {name}, got {{}}\", __v.kind())))?;\n\
                         ::std::result::Result::Ok({name} {{ {inits} }})\n\
                     }}\n\
                 }}"
            )
        }
        Item::TupleStruct { name, arity } => match arity {
            1 => format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn from_value(__v: &::serde::Value) \
                         -> ::std::result::Result<Self, ::serde::Error> {{\n\
                         ::std::result::Result::Ok({name}(\
                             ::serde::Deserialize::from_value(__v)?))\n\
                     }}\n\
                 }}"
            ),
            n => {
                let elems: Vec<String> = (0..n)
                    .map(|k| format!("::serde::Deserialize::from_value(&__a[{k}])?"))
                    .collect();
                format!(
                    "impl ::serde::Deserialize for {name} {{\n\
                         fn from_value(__v: &::serde::Value) \
                             -> ::std::result::Result<Self, ::serde::Error> {{\n\
                             let __a = __v.as_array().ok_or_else(|| \
                                 ::serde::Error::custom(\
                                     \"expected array for tuple struct {name}\"))?;\n\
                             if __a.len() != {n} {{\n\
                                 return ::std::result::Result::Err(::serde::Error::custom(\
                                     \"wrong arity for tuple struct {name}\"));\n\
                             }}\n\
                             ::std::result::Result::Ok({name}({elems}))\n\
                         }}\n\
                     }}",
                    elems = elems.join(", ")
                )
            }
        },
        Item::Enum { name, variants } => {
            let unit_arms: String = variants
                .iter()
                .filter(|v| matches!(v.fields, Fields::Unit))
                .map(|v| {
                    format!(
                        "\"{vn}\" => ::std::result::Result::Ok({name}::{vn}),",
                        vn = v.name
                    )
                })
                .collect();
            let tagged_arms: String = variants
                .iter()
                .filter(|v| !matches!(v.fields, Fields::Unit))
                .map(|v| {
                    let vn = &v.name;
                    match &v.fields {
                        Fields::Tuple(1) => format!(
                            "\"{vn}\" => ::std::result::Result::Ok(\
                                 {name}::{vn}(::serde::Deserialize::from_value(__inner)?)),"
                        ),
                        Fields::Tuple(n) => {
                            let elems: Vec<String> = (0..*n)
                                .map(|k| format!("::serde::Deserialize::from_value(&__a[{k}])?"))
                                .collect();
                            format!(
                                "\"{vn}\" => {{\n\
                                     let __a = __inner.as_array().ok_or_else(|| \
                                         ::serde::Error::custom(\
                                             \"expected array for variant {vn}\"))?;\n\
                                     if __a.len() != {n} {{\n\
                                         return ::std::result::Result::Err(\
                                             ::serde::Error::custom(\
                                                 \"wrong arity for variant {vn}\"));\n\
                                     }}\n\
                                     ::std::result::Result::Ok({name}::{vn}({elems}))\n\
                                 }}",
                                elems = elems.join(", ")
                            )
                        }
                        Fields::Named(fs) => {
                            let inits: String = fs
                                .iter()
                                .map(|f| format!("{f}: ::serde::field(__fm, \"{f}\")?,"))
                                .collect();
                            format!(
                                "\"{vn}\" => {{\n\
                                     let __fm = __inner.as_object().ok_or_else(|| \
                                         ::serde::Error::custom(\
                                             \"expected object for variant {vn}\"))?;\n\
                                     ::std::result::Result::Ok({name}::{vn} {{ {inits} }})\n\
                                 }}"
                            )
                        }
                        Fields::Unit => unreachable!(),
                    }
                })
                .collect::<Vec<_>>()
                .join("\n");
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn from_value(__v: &::serde::Value) \
                         -> ::std::result::Result<Self, ::serde::Error> {{\n\
                         match __v {{\n\
                             ::serde::Value::String(__s) => match __s.as_str() {{\n\
                                 {unit_arms}\n\
                                 __other => ::std::result::Result::Err(::serde::Error::custom(\
                                     format!(\"unknown variant `{{}}` of {name}\", __other))),\n\
                             }},\n\
                             ::serde::Value::Object(__m) if __m.len() == 1 => {{\n\
                                 let (__tag, __inner) = __m.iter().next().unwrap();\n\
                                 match __tag.as_str() {{\n\
                                     {tagged_arms}\n\
                                     __other => ::std::result::Result::Err(\
                                         ::serde::Error::custom(format!(\
                                             \"unknown variant `{{}}` of {name}\", __other))),\n\
                                 }}\n\
                             }}\n\
                             __other => ::std::result::Result::Err(::serde::Error::custom(\
                                 format!(\"expected {name} variant, got {{}}\", __other.kind()))),\n\
                         }}\n\
                     }}\n\
                 }}"
            )
        }
    };
    body.parse()
        .expect("serde shim derive: generated Deserialize impl must parse")
}

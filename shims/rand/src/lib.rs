//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no crates.io access, so this shim provides the
//! exact API subset the workspace uses: [`SeedableRng::seed_from_u64`],
//! [`rngs::SmallRng`], and the [`Rng`] extension methods `gen`, `gen_range`
//! and `gen_bool`. The generator is xoshiro256++ seeded via SplitMix64 —
//! the same construction the real `SmallRng` uses on 64-bit targets — so
//! statistical quality is adequate for the Monte-Carlo tests in this
//! workspace. Streams are NOT bit-compatible with the real crate; nothing
//! in the workspace depends on the concrete stream, only on determinism
//! given a seed.

/// Low-level generator interface.
pub trait RngCore {
    /// Next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// Seedable construction.
pub trait SeedableRng: Sized {
    /// Build a generator from a 64-bit seed (deterministic).
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types samplable from the "standard" distribution (`rng.gen::<T>()`).
pub trait StandardSample {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl StandardSample for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> f32 {
        // 24 uniform mantissa bits in [0, 1)
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl StandardSample for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        // 53 uniform mantissa bits in [0, 1)
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardSample for u32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> u32 {
        rng.next_u32()
    }
}

impl StandardSample for u64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> u64 {
        rng.next_u64()
    }
}

impl StandardSample for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        rng.next_u32() & 1 == 1
    }
}

/// Types uniformly samplable between two bounds (drives `gen_range`).
pub trait SampleUniform: Copy + PartialOrd {
    /// Uniform draw from `[lo, hi)` (`hi` exclusive).
    fn sample_half_open<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self;
    /// Uniform draw from `[lo, hi]` (both inclusive).
    fn sample_inclusive<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self;
}

macro_rules! int_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(lo: $t, hi: $t, rng: &mut R) -> $t {
                assert!(lo < hi, "empty range in gen_range");
                let span = (hi as i128).wrapping_sub(lo as i128) as u64;
                // multiply-shift bounded sampling (Lemire); bias < 2^-64
                let v = ((rng.next_u64() as u128 * span as u128) >> 64) as u64;
                lo.wrapping_add(v as $t)
            }
            fn sample_inclusive<R: RngCore + ?Sized>(lo: $t, hi: $t, rng: &mut R) -> $t {
                assert!(lo <= hi, "empty range in gen_range");
                if lo == <$t>::MIN && hi == <$t>::MAX {
                    return rng.next_u64() as $t;
                }
                let span = (hi as i128).wrapping_sub(lo as i128) as u64 + 1;
                let v = ((rng.next_u64() as u128 * span as u128) >> 64) as u64;
                lo.wrapping_add(v as $t)
            }
        }
    )*};
}

int_uniform!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(lo: $t, hi: $t, rng: &mut R) -> $t {
                assert!(lo < hi, "empty range in gen_range");
                let u = <$t as StandardSample>::sample_standard(rng);
                lo + u * (hi - lo)
            }
            fn sample_inclusive<R: RngCore + ?Sized>(lo: $t, hi: $t, rng: &mut R) -> $t {
                assert!(lo <= hi, "empty range in gen_range");
                let u = <$t as StandardSample>::sample_standard(rng);
                lo + u * (hi - lo)
            }
        }
    )*};
}

float_uniform!(f32, f64);

/// Ranges samplable by `rng.gen_range(range)`. The single blanket impl per
/// range shape ties the range's element type to the output type, which is
/// what lets integer-literal ranges infer from context (e.g. indexing).
pub trait SampleRange<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for core::ops::Range<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_half_open(self.start, self.end, rng)
    }
}

impl<T: SampleUniform> SampleRange<T> for core::ops::RangeInclusive<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_inclusive(*self.start(), *self.end(), rng)
    }
}

/// High-level sampling methods, blanket-implemented for every generator.
pub trait Rng: RngCore {
    /// Sample from the standard distribution of `T`.
    fn gen<T: StandardSample>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample_standard(self)
    }

    /// Sample uniformly from a range.
    fn gen_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// A Bernoulli draw with success probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!(
            (0.0..=1.0).contains(&p),
            "gen_bool probability out of range"
        );
        f64::sample_standard(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Generator namespaces, mirroring `rand::rngs`.
pub mod rngs {
    use super::{splitmix64, RngCore, SeedableRng};

    /// xoshiro256++ — small, fast, and statistically solid.
    #[derive(Debug, Clone)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> SmallRng {
            let mut sm = seed;
            let mut s = [0u64; 4];
            for slot in &mut s {
                *slot = splitmix64(&mut sm);
            }
            // all-zero state is a fixed point; splitmix of any seed cannot
            // produce it, but guard anyway
            if s == [0, 0, 0, 0] {
                s[0] = 0x9e37_79b9_7f4a_7c15;
            }
            SmallRng { s }
        }
    }

    impl RngCore for SmallRng {
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_given_seed() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
        let mut c = SmallRng::seed_from_u64(43);
        assert_ne!(a.gen::<u64>(), c.gen::<u64>());
    }

    #[test]
    fn unit_floats_in_range() {
        let mut r = SmallRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x: f64 = r.gen();
            assert!((0.0..1.0).contains(&x));
            let y: f32 = r.gen();
            assert!((0.0..1.0).contains(&y));
        }
    }

    #[test]
    fn gen_range_bounds() {
        let mut r = SmallRng::seed_from_u64(9);
        for _ in 0..10_000 {
            let v = r.gen_range(3u32..17);
            assert!((3..17).contains(&v));
            let w = r.gen_range(-2.5f64..=2.5);
            assert!((-2.5..=2.5).contains(&w));
            let z = r.gen_range(0usize..1);
            assert_eq!(z, 0);
        }
    }

    #[test]
    fn gen_range_mean_is_central() {
        let mut r = SmallRng::seed_from_u64(11);
        let n = 100_000;
        let sum: f64 = (0..n).map(|_| r.gen_range(0u32..100) as f64).sum();
        let mean = sum / n as f64;
        assert!((mean - 49.5).abs() < 0.5, "mean {mean}");
    }

    #[test]
    fn gen_bool_frequency() {
        let mut r = SmallRng::seed_from_u64(13);
        let hits = (0..100_000).filter(|_| r.gen_bool(0.3)).count();
        let frac = hits as f64 / 100_000.0;
        assert!((frac - 0.3).abs() < 0.01, "frac {frac}");
    }
}

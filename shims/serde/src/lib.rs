//! Offline stand-in for `serde`.
//!
//! The real serde is a zero-copy visitor framework; this shim is a simple
//! value-tree model: `Serialize` lowers to a [`Value`], `Deserialize` lifts
//! from one. The derive macros (from the sibling `serde_derive` shim) and
//! the `serde_json` shim both target this model. The JSON encoding matches
//! serde's defaults for the shapes used in this workspace: structs as
//! objects, unit enum variants as strings, data-carrying variants as
//! single-key objects (externally tagged), `Duration` as
//! `{"secs", "nanos"}`.

use std::collections::BTreeMap;
use std::time::Duration;

pub use serde_derive::{Deserialize, Serialize};

/// Key-ordered object map (deterministic output).
pub type Map = BTreeMap<String, Value>;

/// A JSON-like value tree.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    Null,
    Bool(bool),
    /// Signed integers (fits i64).
    Int(i64),
    /// Unsigned integers that do not fit i64.
    UInt(u64),
    Float(f64),
    String(String),
    Array(Vec<Value>),
    Object(Map),
}

impl Value {
    pub fn as_object(&self) -> Option<&Map> {
        match self {
            Value::Object(m) => Some(m),
            _ => None,
        }
    }

    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// Type name for error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::Int(_) | Value::UInt(_) => "integer",
            Value::Float(_) => "number",
            Value::String(_) => "string",
            Value::Array(_) => "array",
            Value::Object(_) => "object",
        }
    }
}

/// Deserialization/serialization error.
#[derive(Debug, Clone, PartialEq)]
pub struct Error(pub String);

impl Error {
    pub fn custom(msg: impl Into<String>) -> Error {
        Error(msg.into())
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for Error {}

/// Lower `self` into a [`Value`].
pub trait Serialize {
    fn to_value(&self) -> Value;
}

/// Lift `Self` from a [`Value`].
pub trait Deserialize: Sized {
    fn from_value(v: &Value) -> Result<Self, Error>;
}

/// Fetch and deserialize a struct field; missing keys read as `Null` so
/// `Option` fields tolerate omission.
pub fn field<T: Deserialize>(m: &Map, key: &str) -> Result<T, Error> {
    match m.get(key) {
        Some(v) => T::from_value(v).map_err(|e| Error(format!("field `{key}`: {e}"))),
        None => T::from_value(&Value::Null).map_err(|_| Error(format!("missing field `{key}`"))),
    }
}

// ---------------------------------------------------------------- primitives

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<bool, Error> {
        match v {
            Value::Bool(b) => Ok(*b),
            other => Err(Error(format!("expected bool, got {}", other.kind()))),
        }
    }
}

macro_rules! int_impls {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                let wide = *self as i128;
                if let Ok(i) = i64::try_from(wide) {
                    Value::Int(i)
                } else {
                    Value::UInt(*self as u64)
                }
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<$t, Error> {
                let out = match v {
                    Value::Int(i) => <$t>::try_from(*i).ok(),
                    Value::UInt(u) => <$t>::try_from(*u).ok(),
                    // tolerate exact floats (JSON writers that emit 3.0)
                    Value::Float(f) if f.fract() == 0.0 && f.is_finite() => {
                        <$t>::try_from(*f as i64).ok()
                    }
                    _ => None,
                };
                out.ok_or_else(|| {
                    Error(format!("expected {}, got {:?}", stringify!($t), v))
                })
            }
        }
    )*};
}

int_impls!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_impls {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Float(*self as f64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<$t, Error> {
                match v {
                    Value::Float(f) => Ok(*f as $t),
                    Value::Int(i) => Ok(*i as $t),
                    Value::UInt(u) => Ok(*u as $t),
                    other => Err(Error(format!(
                        "expected {}, got {}", stringify!($t), other.kind()))),
                }
            }
        }
    )*};
}

float_impls!(f32, f64);

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::String(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<String, Error> {
        match v {
            Value::String(s) => Ok(s.clone()),
            other => Err(Error(format!("expected string, got {}", other.kind()))),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::String(self.to_owned())
    }
}

// ------------------------------------------------------------- containers

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Vec<T>, Error> {
        match v {
            Value::Array(a) => a.iter().map(T::from_value).collect(),
            other => Err(Error(format!("expected array, got {}", other.kind()))),
        }
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(x) => x.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Option<T>, Error> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

macro_rules! tuple_impls {
    ($(($($n:tt $t:ident),+))*) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$n.to_value()),+])
            }
        }
        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn from_value(v: &Value) -> Result<($($t,)+), Error> {
                const LEN: usize = [$($n),+].len();
                let a = v.as_array().ok_or_else(|| {
                    Error(format!("expected array (tuple), got {}", v.kind()))
                })?;
                if a.len() != LEN {
                    return Err(Error(format!(
                        "expected {LEN}-tuple, got array of {}", a.len())));
                }
                Ok(($($t::from_value(&a[$n])?,)+))
            }
        }
    )*};
}

tuple_impls! {
    (0 A)
    (0 A, 1 B)
    (0 A, 1 B, 2 C)
    (0 A, 1 B, 2 C, 3 D)
}

impl Serialize for Duration {
    fn to_value(&self) -> Value {
        let mut m = Map::new();
        m.insert("secs".into(), self.as_secs().to_value());
        m.insert("nanos".into(), self.subsec_nanos().to_value());
        Value::Object(m)
    }
}

impl Deserialize for Duration {
    fn from_value(v: &Value) -> Result<Duration, Error> {
        let m = v
            .as_object()
            .ok_or_else(|| Error(format!("expected duration object, got {}", v.kind())))?;
        Ok(Duration::new(field(m, "secs")?, field(m, "nanos")?))
    }
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Value, Error> {
        Ok(v.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_roundtrip() {
        assert_eq!(u64::from_value(&(u64::MAX.to_value())).unwrap(), u64::MAX);
        assert_eq!(i64::from_value(&((-5i64).to_value())).unwrap(), -5);
        assert_eq!(f64::from_value(&(2.5f64.to_value())).unwrap(), 2.5);
        assert_eq!(
            String::from_value(&"hi".to_string().to_value()).unwrap(),
            "hi"
        );
        assert_eq!(
            Vec::<u32>::from_value(&vec![1u32, 2, 3].to_value()).unwrap(),
            vec![1, 2, 3]
        );
        assert_eq!(Option::<f64>::from_value(&Value::Null).unwrap(), None);
        let d = Duration::new(3, 250);
        assert_eq!(Duration::from_value(&d.to_value()).unwrap(), d);
        let pair = (7u32, 9usize);
        assert_eq!(<(u32, usize)>::from_value(&pair.to_value()).unwrap(), pair);
    }

    #[test]
    fn big_u64_is_not_truncated() {
        let x = (1u64 << 62) + 12345;
        assert_eq!(u64::from_value(&x.to_value()).unwrap(), x);
    }

    #[test]
    fn type_mismatch_errors() {
        assert!(bool::from_value(&Value::Int(1)).is_err());
        assert!(u32::from_value(&Value::String("x".into())).is_err());
        assert!(Vec::<u32>::from_value(&Value::Int(1)).is_err());
    }
}

//! Offline stand-in for `serde_json`: JSON text ⇄ the serde shim's
//! [`Value`] tree, plus a simplified `json!` macro.

use serde::{Deserialize, Serialize};
pub use serde::{Error, Map, Value};

/// Result alias matching the real crate's shape.
pub type Result<T> = std::result::Result<T, Error>;

/// Serialize to a `Value` (the real crate's `to_value`, infallible here).
pub fn to_value<T: Serialize + ?Sized>(x: &T) -> Value {
    x.to_value()
}

/// Serialize to compact JSON text.
pub fn to_string<T: Serialize + ?Sized>(x: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&x.to_value(), &mut out, None, 0);
    Ok(out)
}

/// Serialize to pretty-printed JSON text (two-space indent).
pub fn to_string_pretty<T: Serialize + ?Sized>(x: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&x.to_value(), &mut out, Some(2), 0);
    Ok(out)
}

/// Deserialize from JSON text.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T> {
    let v = parse_value(s)?;
    T::from_value(&v)
}

// ------------------------------------------------------------------ emitter

fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(w) = indent {
        out.push('\n');
        for _ in 0..w * depth {
            out.push(' ');
        }
    }
}

fn write_value(v: &Value, out: &mut String, indent: Option<usize>, depth: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Int(i) => out.push_str(&i.to_string()),
        Value::UInt(u) => out.push_str(&u.to_string()),
        Value::Float(f) => {
            if f.is_finite() {
                // always include a decimal point or exponent so the value
                // re-parses as a float
                let s = format!("{f}");
                out.push_str(&s);
                if !s.contains('.') && !s.contains('e') && !s.contains('E') {
                    out.push_str(".0");
                }
            } else {
                out.push_str("null"); // JSON has no NaN/Inf
            }
        }
        Value::String(s) => write_escaped(s, out),
        Value::Array(a) => {
            if a.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (k, e) in a.iter().enumerate() {
                if k > 0 {
                    out.push(',');
                    if indent.is_none() {
                        // compact: no space
                    }
                }
                newline_indent(out, indent, depth + 1);
                write_value(e, out, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push(']');
        }
        Value::Object(m) => {
            if m.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (k, (key, val)) in m.iter().enumerate() {
                if k > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_escaped(key, out);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(val, out, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push('}');
        }
    }
}

// ------------------------------------------------------------------- parser

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

fn parse_value(s: &str) -> Result<Value> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::custom(format!(
            "trailing characters at byte {}",
            p.pos
        )));
    }
    Ok(v)
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<()> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::custom(format!(
                "expected `{}` at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn eat_literal(&mut self, lit: &str) -> bool {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            true
        } else {
            false
        }
    }

    fn value(&mut self) -> Result<Value> {
        self.skip_ws();
        match self.peek() {
            None => Err(Error::custom("unexpected end of input")),
            Some(b'n') => {
                if self.eat_literal("null") {
                    Ok(Value::Null)
                } else {
                    Err(Error::custom(format!("bad literal at byte {}", self.pos)))
                }
            }
            Some(b't') => {
                if self.eat_literal("true") {
                    Ok(Value::Bool(true))
                } else {
                    Err(Error::custom(format!("bad literal at byte {}", self.pos)))
                }
            }
            Some(b'f') => {
                if self.eat_literal("false") {
                    Ok(Value::Bool(false))
                } else {
                    Err(Error::custom(format!("bad literal at byte {}", self.pos)))
                }
            }
            Some(b'"') => self.string().map(Value::String),
            Some(b'[') => {
                self.pos += 1;
                let mut out = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b']') {
                    self.pos += 1;
                    return Ok(Value::Array(out));
                }
                loop {
                    out.push(self.value()?);
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => {
                            self.pos += 1;
                        }
                        Some(b']') => {
                            self.pos += 1;
                            return Ok(Value::Array(out));
                        }
                        _ => {
                            return Err(Error::custom(format!(
                                "expected `,` or `]` at byte {}",
                                self.pos
                            )))
                        }
                    }
                }
            }
            Some(b'{') => {
                self.pos += 1;
                let mut out = Map::new();
                self.skip_ws();
                if self.peek() == Some(b'}') {
                    self.pos += 1;
                    return Ok(Value::Object(out));
                }
                loop {
                    self.skip_ws();
                    let key = self.string()?;
                    self.skip_ws();
                    self.expect(b':')?;
                    let val = self.value()?;
                    out.insert(key, val);
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => {
                            self.pos += 1;
                        }
                        Some(b'}') => {
                            self.pos += 1;
                            return Ok(Value::Object(out));
                        }
                        _ => {
                            return Err(Error::custom(format!(
                                "expected `,` or `}}` at byte {}",
                                self.pos
                            )))
                        }
                    }
                }
            }
            Some(_) => self.number(),
        }
    }

    fn string(&mut self) -> Result<String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(Error::custom("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| Error::custom("truncated \\u escape"))?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex)
                                    .map_err(|_| Error::custom("bad \\u escape"))?,
                                16,
                            )
                            .map_err(|_| Error::custom("bad \\u escape"))?;
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| Error::custom("bad \\u code point"))?,
                            );
                            self.pos += 4;
                        }
                        _ => return Err(Error::custom("bad escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // consume one UTF-8 character
                    let rest = &self.bytes[self.pos..];
                    let s =
                        std::str::from_utf8(rest).map_err(|_| Error::custom("invalid UTF-8"))?;
                    let c = s.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::custom("invalid number"))?;
        if text.is_empty() || text == "-" {
            return Err(Error::custom(format!("bad number at byte {start}")));
        }
        if !is_float {
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Value::Int(i));
            }
            if let Ok(u) = text.parse::<u64>() {
                return Ok(Value::UInt(u));
            }
        }
        text.parse::<f64>()
            .map(Value::Float)
            .map_err(|_| Error::custom(format!("bad number `{text}`")))
    }
}

/// Build a [`Value`] from JSON-ish literal syntax. Supports the subset the
/// workspace uses: objects with string-literal keys and expression values,
/// arrays of expressions, and plain expressions.
#[macro_export]
macro_rules! json {
    (null) => { $crate::Value::Null };
    ([ $($elem:expr),* $(,)? ]) => {
        $crate::Value::Array(vec![ $( $crate::to_value(&$elem) ),* ])
    };
    ({ $($key:literal : $val:expr),* $(,)? }) => {{
        #[allow(unused_mut)]
        let mut m = $crate::Map::new();
        $( m.insert(::std::string::String::from($key), $crate::to_value(&$val)); )*
        $crate::Value::Object(m)
    }};
    ($other:expr) => { $crate::to_value(&$other) };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn text_roundtrip() {
        let v = json!({
            "name": "x\"y",
            "n": 3u32,
            "xs": vec![1.5f64, 2.0],
            "flag": true,
            "none": Option::<u32>::None,
        });
        let compact = to_string(&v).unwrap();
        let pretty = to_string_pretty(&v).unwrap();
        assert_eq!(parse_value(&compact).unwrap(), v);
        assert_eq!(parse_value(&pretty).unwrap(), v);
    }

    #[test]
    fn parses_nested() {
        let v: Value = from_str("{\"a\": [1, 2.5, {\"b\": null}], \"c\": -7}").unwrap();
        let m = v.as_object().unwrap();
        assert_eq!(m["c"], Value::Int(-7));
        let a = m["a"].as_array().unwrap();
        assert_eq!(a[1], Value::Float(2.5));
    }

    #[test]
    fn typed_from_str() {
        let pairs: Vec<(u32, usize)> = from_str("[[0, 1], [5, 0]]").unwrap();
        assert_eq!(pairs, vec![(0, 1), (5, 0)]);
    }

    #[test]
    fn big_u64_roundtrips_through_text() {
        let x = u64::MAX - 3;
        let s = to_string(&x).unwrap();
        let back: u64 = from_str(&s).unwrap();
        assert_eq!(back, x);
    }

    #[test]
    fn rejects_garbage() {
        assert!(from_str::<Value>("{\"a\": }").is_err());
        assert!(from_str::<Value>("[1, 2").is_err());
        assert!(from_str::<Value>("hello").is_err());
        assert!(from_str::<Value>("1 2").is_err());
    }
}

//! Offline stand-in for `proptest`.
//!
//! Provides the subset this workspace's property tests use: the
//! [`proptest!`] macro, range and collection strategies, `prop_map`,
//! [`prelude::ProptestConfig`] and the `prop_assert*` macros. Cases are
//! generated from a deterministic per-case RNG; there is **no shrinking** —
//! a failure reports the case index and seed so it can be replayed.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Run-time configuration (subset).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases per test.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

/// A generator of random values of `Self::Value`.
pub trait Strategy {
    type Value;

    /// Generate one value.
    fn generate(&self, rng: &mut SmallRng) -> Self::Value;

    /// Map the generated value through `f`.
    fn prop_map<T, F: Fn(Self::Value) -> T>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

/// Output of [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, T, F: Fn(S::Value) -> T> Strategy for Map<S, F> {
    type Value = T;
    fn generate(&self, rng: &mut SmallRng) -> T {
        (self.f)(self.inner.generate(rng))
    }
}

macro_rules! range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut SmallRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut SmallRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

/// `Just(x)` — always yields a clone of `x`.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut SmallRng) -> T {
        self.0.clone()
    }
}

macro_rules! tuple_strategy {
    ($(($($n:tt $s:ident),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut SmallRng) -> Self::Value {
                ($(self.$n.generate(rng),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (0 A, 1 B)
    (0 A, 1 B, 2 C)
    (0 A, 1 B, 2 C, 3 D)
}

/// `any::<T>()` for types with a full-range strategy.
pub fn any<T: Arbitrary>() -> T::Strategy {
    T::arbitrary()
}

/// Types with a canonical full-range strategy.
pub trait Arbitrary {
    type Strategy: Strategy<Value = Self>;
    fn arbitrary() -> Self::Strategy;
}

/// Full-range integer strategy backing `any::<int>()`.
pub struct FullRange<T>(core::marker::PhantomData<T>);

macro_rules! arbitrary_int {
    ($($t:ty),*) => {$(
        impl Strategy for FullRange<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut SmallRng) -> $t {
                rng.gen_range(<$t>::MIN..=<$t>::MAX)
            }
        }
        impl Arbitrary for $t {
            type Strategy = FullRange<$t>;
            fn arbitrary() -> Self::Strategy {
                FullRange(core::marker::PhantomData)
            }
        }
    )*};
}

arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for FullRange<bool> {
    type Value = bool;
    fn generate(&self, rng: &mut SmallRng) -> bool {
        rng.gen::<bool>()
    }
}

impl Arbitrary for bool {
    type Strategy = FullRange<bool>;
    fn arbitrary() -> Self::Strategy {
        FullRange(core::marker::PhantomData)
    }
}

/// Collection strategies.
pub mod collection {
    use super::{SmallRng, Strategy};
    use rand::Rng;

    /// Element-count specification: a fixed size or a range.
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        lo: usize,
        hi: usize, // exclusive
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> SizeRange {
            SizeRange { lo: n, hi: n + 1 }
        }
    }

    impl From<core::ops::Range<usize>> for SizeRange {
        fn from(r: core::ops::Range<usize>) -> SizeRange {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi: r.end,
            }
        }
    }

    impl From<core::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: core::ops::RangeInclusive<usize>) -> SizeRange {
            SizeRange {
                lo: *r.start(),
                hi: *r.end() + 1,
            }
        }
    }

    /// Strategy for `Vec<S::Value>` with a size drawn from `size`.
    pub struct VecStrategy<S> {
        elem: S,
        size: SizeRange,
    }

    /// `vec(strategy, len)` / `vec(strategy, lo..hi)`.
    pub fn vec<S: Strategy>(elem: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            elem,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut SmallRng) -> Vec<S::Value> {
            let n = rng.gen_range(self.size.lo..self.size.hi);
            (0..n).map(|_| self.elem.generate(rng)).collect()
        }
    }
}

/// `proptest::prop` namespace alias used by some call sites.
pub mod prop {
    pub use crate::collection;
}

/// One-stop imports, mirroring `proptest::prelude::*`.
pub mod prelude {
    pub use crate::{
        any, collection, prop, prop_assert, prop_assert_eq, prop_assert_ne, proptest, Just,
        ProptestConfig, Strategy,
    };
    pub use rand::rngs::SmallRng;
}

#[doc(hidden)]
pub fn __case_rng(test_name: &str, case: u32) -> SmallRng {
    // derive a per-test, per-case seed so failures are replayable
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in test_name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    SmallRng::seed_from_u64(h ^ ((case as u64) << 32 | case as u64))
}

/// The test-defining macro. Supports the standard shape:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(64))]
///     #[test]
///     fn my_prop(x in 0u32..100, v in collection::vec(0f64..1.0, 0..50)) {
///         prop_assert!(x < 100);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!(($cfg); $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!(($crate::ProptestConfig::default()); $($rest)*);
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($cfg:expr); $($(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __cfg: $crate::ProptestConfig = $cfg;
                for __case in 0..__cfg.cases {
                    let mut __rng = $crate::__case_rng(stringify!($name), __case);
                    $(let $arg = $crate::Strategy::generate(&($strat), &mut __rng);)+
                    let __result: ::std::result::Result<(), ::std::string::String> =
                        (|| { $body ::std::result::Result::Ok(()) })();
                    if let ::std::result::Result::Err(__msg) = __result {
                        panic!(
                            "proptest case {}/{} of `{}` failed: {}",
                            __case + 1, __cfg.cases, stringify!($name), __msg
                        );
                    }
                }
            }
        )*
    };
}

/// Assert inside a `proptest!` body (fails the case, not the process).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err(
                format!("assertion failed: {}", stringify!($cond)));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err(
                format!("assertion failed: {}: {}", stringify!($cond), format!($($fmt)+)));
        }
    };
}

/// Equality assertion inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {{
        let (__a, __b) = (&$a, &$b);
        if !(*__a == *__b) {
            return ::std::result::Result::Err(
                format!("assertion failed: {} == {} ({:?} vs {:?})",
                    stringify!($a), stringify!($b), __a, __b));
        }
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (__a, __b) = (&$a, &$b);
        if !(*__a == *__b) {
            return ::std::result::Result::Err(
                format!("assertion failed: {} == {} ({:?} vs {:?}): {}",
                    stringify!($a), stringify!($b), __a, __b, format!($($fmt)+)));
        }
    }};
}

/// Inequality assertion inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {{
        let (__a, __b) = (&$a, &$b);
        if *__a == *__b {
            return ::std::result::Result::Err(format!(
                "assertion failed: {} != {} (both {:?})",
                stringify!($a),
                stringify!($b),
                __a
            ));
        }
    }};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn ranges_in_bounds(x in 5u32..50, y in -1.0f64..1.0) {
            prop_assert!((5..50).contains(&x));
            prop_assert!((-1.0..1.0).contains(&y));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]
        #[test]
        fn vec_and_tuple_strategies(
            v in collection::vec((0u32..10, 0u32..10), 0..20),
            n in collection::vec(0f64..1.0, 7usize),
        ) {
            prop_assert!(v.len() < 20);
            prop_assert_eq!(n.len(), 7);
            for (a, b) in v {
                prop_assert!(a < 10 && b < 10);
            }
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]
        #[test]
        fn prop_map_applies(x in (0u32..100).prop_map(|v| v * 2)) {
            prop_assert_eq!(x % 2, 0);
            prop_assert!(x < 200);
        }
    }

    #[test]
    fn any_covers_full_range_deterministically() {
        let s = any::<u64>();
        let mut r1 = crate::__case_rng("t", 0);
        let mut r2 = crate::__case_rng("t", 0);
        assert_eq!(s.generate(&mut r1), s.generate(&mut r2));
    }
}

//! Offline stand-in for the `bytes` crate: the little-endian cursor/builder
//! subset the workspace's binary codecs use. `Bytes` is a plain owned
//! buffer (no refcounted zero-copy slicing — `slice` copies), which is
//! semantically equivalent for every use in this workspace.

use std::ops::{Deref, RangeBounds};

/// Read cursor over a byte source.
pub trait Buf {
    /// Bytes left to read.
    fn remaining(&self) -> usize;
    /// The unread bytes.
    fn chunk(&self) -> &[u8];
    /// Advance the cursor.
    fn advance(&mut self, n: usize);

    fn has_remaining(&self) -> bool {
        self.remaining() > 0
    }

    fn get_u8(&mut self) -> u8 {
        let b = self.chunk()[0];
        self.advance(1);
        b
    }

    fn get_u32_le(&mut self) -> u32 {
        let mut a = [0u8; 4];
        a.copy_from_slice(&self.chunk()[..4]);
        self.advance(4);
        u32::from_le_bytes(a)
    }

    fn get_u64_le(&mut self) -> u64 {
        let mut a = [0u8; 8];
        a.copy_from_slice(&self.chunk()[..8]);
        self.advance(8);
        u64::from_le_bytes(a)
    }

    fn get_f32_le(&mut self) -> f32 {
        f32::from_bits(self.get_u32_le())
    }

    fn get_f64_le(&mut self) -> f64 {
        f64::from_bits(self.get_u64_le())
    }

    /// Copy `dst.len()` bytes out.
    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        dst.copy_from_slice(&self.chunk()[..dst.len()]);
        self.advance(dst.len());
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }
    fn chunk(&self) -> &[u8] {
        self
    }
    fn advance(&mut self, n: usize) {
        *self = &self[n..];
    }
}

/// Write sink for little-endian records.
pub trait BufMut {
    fn put_slice(&mut self, src: &[u8]);

    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }
    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }
    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }
    fn put_f32_le(&mut self, v: f32) {
        self.put_u32_le(v.to_bits());
    }
    fn put_f64_le(&mut self, v: f64) {
        self.put_u64_le(v.to_bits());
    }
}

/// Growable byte builder.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    pub fn new() -> BytesMut {
        BytesMut::default()
    }

    pub fn with_capacity(cap: usize) -> BytesMut {
        BytesMut {
            data: Vec::with_capacity(cap),
        }
    }

    pub fn len(&self) -> usize {
        self.data.len()
    }

    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Freeze into an immutable buffer.
    pub fn freeze(self) -> Bytes {
        Bytes {
            data: self.data,
            pos: 0,
        }
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data
    }
}

/// Immutable byte buffer; reading via [`Buf`] advances an internal cursor.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Bytes {
    data: Vec<u8>,
    pos: usize,
}

impl Bytes {
    pub fn new() -> Bytes {
        Bytes::default()
    }

    pub fn copy_from_slice(src: &[u8]) -> Bytes {
        Bytes {
            data: src.to_vec(),
            pos: 0,
        }
    }

    /// Full (unconsumed) length.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// A new buffer holding the given subrange (copies; the real crate
    /// shares — equivalent behavior for every caller here).
    pub fn slice(&self, range: impl RangeBounds<usize>) -> Bytes {
        use std::ops::Bound;
        let start = match range.start_bound() {
            Bound::Included(&s) => s,
            Bound::Excluded(&s) => s + 1,
            Bound::Unbounded => 0,
        };
        let end = match range.end_bound() {
            Bound::Included(&e) => e + 1,
            Bound::Excluded(&e) => e,
            Bound::Unbounded => self.data.len(),
        };
        Bytes {
            data: self.data[start..end].to_vec(),
            pos: 0,
        }
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(data: Vec<u8>) -> Bytes {
        Bytes { data, pos: 0 }
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.data.len() - self.pos
    }
    fn chunk(&self) -> &[u8] {
        &self.data[self.pos..]
    }
    fn advance(&mut self, n: usize) {
        assert!(self.pos + n <= self.data.len(), "advance past end");
        self.pos += n;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_le_records() {
        let mut b = BytesMut::with_capacity(32);
        b.put_u32_le(0xdead_beef);
        b.put_u64_le(0x0123_4567_89ab_cdef);
        b.put_f32_le(1.5);
        b.put_f64_le(-2.25);
        b.put_u8(7);
        let mut r = b.freeze();
        assert_eq!(r.get_u32_le(), 0xdead_beef);
        assert_eq!(r.get_u64_le(), 0x0123_4567_89ab_cdef);
        assert_eq!(r.get_f32_le(), 1.5);
        assert_eq!(r.get_f64_le(), -2.25);
        assert_eq!(r.get_u8(), 7);
        assert_eq!(r.remaining(), 0);
    }

    #[test]
    fn slice_and_buf_for_slices() {
        let mut b = BytesMut::new();
        for i in 0..10u8 {
            b.put_u8(i);
        }
        let bytes = b.freeze();
        let s = bytes.slice(2..6);
        assert_eq!(&s[..], &[2, 3, 4, 5]);
        let mut raw: &[u8] = &bytes[..];
        assert_eq!(raw.get_u8(), 0);
        assert_eq!(raw.remaining(), 9);
    }
}

//! Offline stand-in for `criterion`.
//!
//! Implements the macro/builder surface the workspace's benches use —
//! `criterion_group!`/`criterion_main!`, `bench_function`,
//! `benchmark_group`, `bench_with_input`, `BenchmarkId`, `black_box`,
//! `Bencher::iter` — with a simple median-of-samples wall-clock measurement
//! printed to stdout instead of criterion's statistical machinery.
//!
//! Environment knobs: `CRITERION_SAMPLES` overrides the per-bench sample
//! count (default 10; benches may lower it via `sample_size`).

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Opaque value barrier (best-effort without inline asm).
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Benchmark identifier: `function_id/parameter`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    pub fn new(function_id: impl Into<String>, parameter: impl Display) -> BenchmarkId {
        BenchmarkId {
            id: format!("{}/{}", function_id.into(), parameter),
        }
    }

    pub fn from_parameter(parameter: impl Display) -> BenchmarkId {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> BenchmarkId {
        BenchmarkId { id: s.to_owned() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> BenchmarkId {
        BenchmarkId { id: s }
    }
}

/// Passed to the measured closure; `iter` runs and times the payload.
pub struct Bencher {
    samples: usize,
    /// Collected per-sample durations of the most recent `iter` call.
    last: Vec<Duration>,
}

impl Bencher {
    fn new(samples: usize) -> Bencher {
        Bencher {
            samples,
            last: Vec::new(),
        }
    }

    /// Time `f` `samples` times (after one untimed warm-up run).
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        black_box(f()); // warm-up
        self.last.clear();
        for _ in 0..self.samples {
            let t = Instant::now();
            black_box(f());
            self.last.push(t.elapsed());
        }
    }
}

fn env_samples(default: usize) -> usize {
    std::env::var("CRITERION_SAMPLES")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(default)
}

fn report(name: &str, samples: &[Duration]) {
    if samples.is_empty() {
        println!("bench {name:<50} (no samples)");
        return;
    }
    let mut sorted = samples.to_vec();
    sorted.sort();
    let median = sorted[sorted.len() / 2];
    let min = sorted[0];
    let max = sorted[sorted.len() - 1];
    println!(
        "bench {name:<50} median {median:>12.3?}   min {min:>12.3?}   max {max:>12.3?}   ({} samples)",
        sorted.len()
    );
}

/// Top-level benchmark driver.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Criterion {
        Criterion {
            sample_size: env_samples(10),
        }
    }
}

impl Criterion {
    /// Configure the default per-bench sample count.
    pub fn sample_size(&mut self, n: usize) -> &mut Criterion {
        self.sample_size = n;
        self
    }

    /// Run one named benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        mut f: F,
    ) -> &mut Criterion {
        let id = id.into();
        let mut b = Bencher::new(self.sample_size);
        f(&mut b);
        report(&id.id, &b.last);
        self
    }

    /// Open a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let sample_size = self.sample_size;
        BenchmarkGroup {
            _parent: self,
            name: name.into(),
            sample_size,
        }
    }
}

/// A named collection of related benchmarks.
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Set this group's sample count.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = env_samples(n);
        self
    }

    /// Run one benchmark in the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        mut f: F,
    ) -> &mut Self {
        let id = id.into();
        let mut b = Bencher::new(self.sample_size);
        f(&mut b);
        report(&format!("{}/{}", self.name, id.id), &b.last);
        self
    }

    /// Run one parameterized benchmark.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        let id = id.into();
        let mut b = Bencher::new(self.sample_size);
        f(&mut b, input);
        report(&format!("{}/{}", self.name, id.id), &b.last);
        self
    }

    /// Finish the group (no-op; exists for API compatibility).
    pub fn finish(self) {}
}

/// Declare a group of benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Declare the bench entry point.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bench(c: &mut Criterion) {
        c.bench_function("add", |b| b.iter(|| black_box(1u64) + black_box(2)));
        let mut g = c.benchmark_group("grp");
        g.sample_size(3);
        g.bench_function(BenchmarkId::new("f", 7), |b| b.iter(|| 7 * 6));
        g.bench_with_input(BenchmarkId::from_parameter(5), &5u64, |b, &n| {
            b.iter(|| n * n)
        });
        g.finish();
    }

    #[test]
    fn runs_and_reports() {
        let mut c = Criterion::default();
        c.sample_size(2);
        sample_bench(&mut c);
    }
}

//! Executable Theorem 1: expected social welfare is neither monotone, nor
//! submodular, nor supermodular — verified end to end on the exact Fig. 1(a)
//! configuration through the public facade API.

use cwelmax::diffusion::SimulationConfig;
use cwelmax::graph::generators;
use cwelmax::prelude::*;

fn rho(problem: &Problem, pairs: &[(u32, usize)]) -> f64 {
    problem.evaluate(&Allocation::from_pairs(pairs.iter().copied()))
}

fn theorem1_problem() -> Problem {
    Problem::new(
        generators::path(2, ProbabilityModel::Constant(1.0)),
        configs::counterexample_theorem1(),
    )
    // the configuration is noiseless and the graph deterministic: a single
    // world gives the exact expectation
    .with_sim(SimulationConfig {
        samples: 1,
        threads: 1,
        base_seed: 0,
    })
}

#[test]
fn welfare_is_not_monotone() {
    let p = theorem1_problem();
    let s1 = rho(&p, &[(0, 0)]);
    let s2 = rho(&p, &[(0, 0), (1, 1)]);
    assert!((s1 - 8.0).abs() < 1e-9, "ρ(S1) = {s1}");
    assert!((s2 - 7.0).abs() < 1e-9, "ρ(S2) = {s2}");
    assert!(
        s2 < s1,
        "adding a seed pair must be able to DECREASE welfare"
    );
}

#[test]
fn welfare_is_not_submodular() {
    let p = theorem1_problem();
    // marginals of x = (u, i1) over S1 ⊂ S2
    let m1 = rho(&p, &[(1, 1), (0, 0)]) - rho(&p, &[(1, 1)]);
    let m2 = rho(&p, &[(1, 1), (1, 2), (0, 0)]) - rho(&p, &[(1, 1), (1, 2)]);
    assert!((m1 - 4.0).abs() < 1e-9);
    assert!((m2 - 5.0).abs() < 1e-9);
    assert!(m2 > m1, "marginal must be able to GROW with the base set");
}

#[test]
fn welfare_is_not_supermodular() {
    let p = theorem1_problem();
    let m1 = rho(&p, &[(0, 0)]) - rho(&p, &[]);
    let m2 = rho(&p, &[(1, 1), (0, 0)]) - rho(&p, &[(1, 1)]);
    assert!((m1 - 8.0).abs() < 1e-9);
    assert!((m2 - 4.0).abs() < 1e-9);
    assert!(m2 < m1, "marginal must be able to SHRINK with the base set");
}

#[test]
fn the_value_function_satisfies_the_model_assumptions() {
    // the counterexample must not cheat: V monotone submodular, V(∅)=0,
    // prices additive, noise zero — so the non-monotonicity comes from the
    // *diffusion*, not from a malformed model
    let m = configs::counterexample_theorem1();
    assert!(m.value_fn().is_monotone());
    assert!(m.value_fn().is_submodular());
    assert!(!m.has_noise());
}

//! End-to-end pipeline tests: every solver on every configuration family,
//! checked for feasibility and the welfare ordering the paper reports.

use cwelmax::core::baselines::{BalanceC, CandidatePool, GreedyWm, RoundRobin, Snake, Tcim};
use cwelmax::core::{best_of, MaxGrd, SupGrd};
use cwelmax::diffusion::SimulationConfig;
use cwelmax::graph::generators::{self, benchmark::Network};
use cwelmax::prelude::*;
use cwelmax::rrset::imm::imm_select;
use cwelmax::rrset::{ImmParams, StandardRr};

fn fast_sim() -> SimulationConfig {
    SimulationConfig {
        samples: 300,
        threads: 0,
        base_seed: 99,
    }
}

fn fast_imm() -> ImmParams {
    ImmParams {
        eps: 0.5,
        ell: 1.0,
        seed: 31,
        threads: 0,
        max_rr_sets: 2_000_000,
    }
}

fn two_item_problem(cfg: TwoItemConfig, budget: usize) -> Problem {
    let g = generators::erdos_renyi(500, 2500, 17, ProbabilityModel::WeightedCascade);
    Problem::new(g, configs::two_item_config(cfg))
        .with_uniform_budget(budget)
        .with_sim(fast_sim())
        .with_imm(fast_imm())
}

#[test]
fn all_solvers_produce_feasible_allocations() {
    let p = two_item_problem(TwoItemConfig::C1, 4);
    let solutions = vec![
        SeqGrd::new(SeqGrdMode::Marginal).solve(&p),
        SeqGrd::new(SeqGrdMode::NoMarginal).solve(&p),
        MaxGrd.solve(&p),
        Tcim.solve(&p),
        BalanceC::default().solve(&p),
        GreedyWm::new(CandidatePool::TopDegree(30)).solve(&p),
        RoundRobin.solve(&p),
        Snake.solve(&p),
    ];
    for s in solutions {
        p.check_feasible(&s.allocation)
            .unwrap_or_else(|e| panic!("{}: {e}", s.algorithm));
        assert!(!s.allocation.is_empty(), "{} returned nothing", s.algorithm);
    }
}

#[test]
fn seqgrd_beats_adoption_count_baselines_on_c1() {
    // the headline Fig. 4 ordering: welfare(SeqGRD) > welfare(TCIM) and
    // welfare(Balance-C) under pure competition with comparable utilities
    let p = two_item_problem(TwoItemConfig::C1, 6);
    let w_seq = p.evaluate(&SeqGrd::new(SeqGrdMode::NoMarginal).solve(&p).allocation);
    let w_tcim = p.evaluate(&Tcim.solve(&p).allocation);
    assert!(
        w_seq > w_tcim,
        "SeqGRD-NM ({w_seq:.1}) must beat TCIM ({w_tcim:.1}) on C1"
    );
}

#[test]
fn maxgrd_suffers_under_soft_competition() {
    // Fig. 4(c): with a positive bundle, allocating only one item misses
    // the second item's welfare
    let p = two_item_problem(TwoItemConfig::C3, 6);
    let w_seq = p.evaluate(&SeqGrd::new(SeqGrdMode::NoMarginal).solve(&p).allocation);
    let w_max = p.evaluate(&MaxGrd.solve(&p).allocation);
    assert!(
        w_seq > w_max,
        "SeqGRD-NM ({w_seq:.1}) must beat MaxGRD ({w_max:.1}) under soft competition"
    );
}

#[test]
fn best_of_never_loses_to_either_component() {
    let p = two_item_problem(TwoItemConfig::C2, 4);
    let combo = best_of(&p, SeqGrd::new(SeqGrdMode::NoMarginal));
    let w_combo = p.evaluate(&combo.allocation);
    let w_seq = p.evaluate(&SeqGrd::new(SeqGrdMode::NoMarginal).solve(&p).allocation);
    let w_max = p.evaluate(&MaxGrd.solve(&p).allocation);
    assert!(w_combo + 1e-9 >= w_seq.max(w_max));
}

#[test]
fn supgrd_pipeline_on_c6_with_imm_fixed_inferior() {
    // the §6.2.3 protocol: inferior seeds = IMM top-k, then SupGRD
    let g = Network::NetHept.tiny_spec().generate();
    let top = imm_select(&g, &StandardRr, 10, &fast_imm());
    let fixed = Allocation::from_item_seeds(1, &top.seeds);
    let p = Problem::new(
        g,
        configs::supgrd_config(cwelmax::utility::configs::SupConfig::C6),
    )
    .with_budgets(vec![10, 0])
    .with_fixed_allocation(fixed)
    .with_sim(fast_sim())
    .with_imm(fast_imm());
    assert!(SupGrd::check_conditions(&p).is_ok());
    let sup = SupGrd.solve(&p);
    let seq = SeqGrd::new(SeqGrdMode::NoMarginal).solve(&p);
    let w_sup = p.evaluate(&sup.allocation);
    let w_seq = p.evaluate(&seq.allocation);
    // Fig. 5(b): SupGRD ≥ SeqGRD-NM on C6 (the superior item should contest
    // the top spreaders, which PRIMA+ deliberately avoids)
    assert!(
        w_sup + 1e-9 >= w_seq,
        "SupGRD ({w_sup:.1}) must be at least SeqGRD-NM ({w_seq:.1}) on C6"
    );
}

#[test]
fn uic_degenerates_to_ic_for_one_positive_item() {
    // Proposition 1 end to end through the public API: single item,
    // U = 1, no noise → welfare(S) == spread(S) in every world
    let g = generators::erdos_renyi(400, 2000, 23, ProbabilityModel::WeightedCascade);
    let model = cwelmax::utility::UtilityModel::new(
        cwelmax::utility::TableValue::from_table(1, vec![0.0, 1.0]),
        vec![0.0],
        vec![cwelmax::utility::NoiseDist::None],
    );
    let p = Problem::new(g, model)
        .with_budgets(vec![8])
        .with_sim(fast_sim())
        .with_imm(fast_imm());
    let s = SeqGrd::new(SeqGrdMode::NoMarginal).solve(&p);
    let est = p.estimator();
    let w = est.welfare(&s.allocation);
    let sigma = est.spread(&s.allocation.seed_nodes());
    assert!((w - sigma).abs() < 1e-9, "welfare {w} vs spread {sigma}");
    // and the chosen seeds should match plain IMM's on the same seed
    let imm = imm_select(&p.graph, &StandardRr, 8, &p.imm);
    let mut a = s.allocation.seed_nodes();
    let mut b = imm.seeds.clone();
    a.sort_unstable();
    b.sort_unstable();
    assert_eq!(a, b, "SeqGRD on one item must reduce to IMM");
}

#[test]
fn multi_item_welfare_grows_with_items_for_seqgrd() {
    // Fig. 6(b): welfare grows with the number of items for SeqGRD-NM
    // (more items = more distinct high-spread regions monetized), while
    // MaxGRD stays flat (it only ever allocates one item)
    let g = generators::erdos_renyi(600, 3000, 29, ProbabilityModel::WeightedCascade);
    let mut seq_w = Vec::new();
    let mut max_w = Vec::new();
    for m in 1..=3 {
        let p = Problem::new(g.clone(), configs::multi_item_pure_competition(m))
            .with_uniform_budget(5)
            .with_sim(fast_sim())
            .with_imm(fast_imm());
        seq_w.push(p.evaluate(&SeqGrd::new(SeqGrdMode::NoMarginal).solve(&p).allocation));
        max_w.push(p.evaluate(&MaxGrd.solve(&p).allocation));
    }
    assert!(
        seq_w[2] > seq_w[0],
        "SeqGRD welfare must grow with items: {seq_w:?}"
    );
    let spread_of_max = max_w.iter().cloned().fold(f64::NEG_INFINITY, f64::max)
        - max_w.iter().cloned().fold(f64::INFINITY, f64::min);
    assert!(
        spread_of_max < 0.25 * max_w[0],
        "MaxGRD welfare must stay roughly flat: {max_w:?}"
    );
}

#[test]
fn adoption_conservation_table6() {
    // §6.4.3: SeqGRD-NM vs Round-robin vs Snake keep the *total* adoption
    // count roughly equal while SeqGRD-NM shifts it toward superior items
    let g = Network::NetHept.tiny_spec().generate();
    let p = Problem::new(g, configs::lastfm())
        .with_uniform_budget(5)
        .with_sim(fast_sim())
        .with_imm(fast_imm());
    let r_seq = p.evaluate_report(&SeqGrd::new(SeqGrdMode::NoMarginal).solve(&p).allocation);
    let r_rr = p.evaluate_report(&RoundRobin.solve(&p).allocation);
    let r_snake = p.evaluate_report(&Snake.solve(&p).allocation);
    let totals = [
        r_seq.total_adoptions(),
        r_rr.total_adoptions(),
        r_snake.total_adoptions(),
    ];
    let max_t = totals.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    let min_t = totals.iter().cloned().fold(f64::INFINITY, f64::min);
    assert!(
        (max_t - min_t) / max_t < 0.15,
        "total adoptions should be stable: {totals:?}"
    );
    assert!(
        r_seq.welfare + 1e-9 >= r_rr.welfare.max(r_snake.welfare),
        "SeqGRD-NM welfare {:.1} must top RR {:.1} / Snake {:.1}",
        r_seq.welfare,
        r_rr.welfare,
        r_snake.welfare
    );
    // the most superior item (indie) gains adoptions relative to RR
    assert!(
        r_seq.adoption_counts[0] > r_rr.adoption_counts[0],
        "indie adoptions: SeqGRD {:.0} vs RR {:.0}",
        r_seq.adoption_counts[0],
        r_rr.adoption_counts[0]
    );
}

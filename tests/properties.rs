//! Property-based tests (proptest) on the core data structures and model
//! invariants.

use cwelmax::diffusion::{Allocation, SimulationConfig, WelfareEstimator};
use cwelmax::graph::{GraphBuilder, ProbabilityModel};
use cwelmax::utility::{ItemSet, NoiseDist, NoiseWorld, TableValue, UtilityModel};
use proptest::prelude::*;

// ---------- ItemSet algebra ------------------------------------------------

proptest! {
    #[test]
    fn itemset_union_intersection_laws(a in 0u32..1 << 12, b in 0u32..1 << 12) {
        let (sa, sb) = (ItemSet(a), ItemSet(b));
        // absorption and de-morgan-ish sanity over the 12-item universe
        prop_assert_eq!(sa.union(sb).intersect(sa), sa);
        prop_assert_eq!(sa.intersect(sb).union(sa), sa);
        prop_assert_eq!(sa.difference(sb).intersect(sb), ItemSet::EMPTY);
        prop_assert_eq!(sa.union(sb).len() + sa.intersect(sb).len(), sa.len() + sb.len());
    }

    #[test]
    fn itemset_subsets_are_exactly_the_powerset(mask in 0u32..1 << 8) {
        let s = ItemSet(mask);
        let subs: Vec<ItemSet> = s.subsets().collect();
        prop_assert_eq!(subs.len(), 1 << s.len());
        for sub in &subs {
            prop_assert!(sub.is_subset_of(s));
        }
        // no duplicates
        let mut sorted: Vec<u32> = subs.iter().map(|x| x.0).collect();
        sorted.sort_unstable();
        sorted.dedup();
        prop_assert_eq!(sorted.len(), 1 << s.len());
    }

    #[test]
    fn itemset_iter_roundtrip(mask in 0u32..1 << 16) {
        let s = ItemSet(mask);
        let rebuilt = ItemSet::from_items(s.iter());
        prop_assert_eq!(rebuilt, s);
    }
}

// ---------- graph builder invariants ---------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]
    #[test]
    fn built_graphs_always_validate(
        n in 1usize..60,
        edges in proptest::collection::vec((0u32..60, 0u32..60), 0..200),
    ) {
        let mut b = GraphBuilder::new(n);
        let mut expected = std::collections::BTreeSet::new();
        for (u, v) in edges {
            let (u, v) = (u % n as u32, v % n as u32);
            b.add_edge(u, v);
            if u != v {
                expected.insert((u, v));
            }
        }
        let g = b.build(ProbabilityModel::WeightedCascade);
        prop_assert!(g.validate().is_ok());
        prop_assert_eq!(g.num_edges(), expected.len());
        // weighted cascade: in-probabilities of each node sum to ≤ 1 (= 1
        // when the node has any in-edge)
        for v in g.nodes() {
            let sum: f64 = g.in_edges(v).map(|e| e.prob as f64).sum();
            if g.in_degree(v) > 0 {
                prop_assert!((sum - 1.0).abs() < 1e-4, "node {} in-prob sum {}", v, sum);
            }
        }
    }
}

// ---------- best-response invariants ----------------------------------------

fn arb_world(m: usize) -> impl Strategy<Value = NoiseWorld> {
    proptest::collection::vec(-10.0f64..10.0, (1 << m) - 1).prop_map(move |mut tail| {
        let mut utils = vec![0.0];
        utils.append(&mut tail);
        NoiseWorld::new(m, utils)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]
    #[test]
    fn best_response_is_feasible_and_maximal(
        w in arb_world(4),
        desire_mask in 0u32..16,
        adopted_bits in 0u32..16,
    ) {
        let desire = ItemSet(desire_mask);
        // adopted must be a feasible previous best response: a subset of
        // desire with non-negative utility (or empty)
        let adopted = {
            let cand = ItemSet(adopted_bits).intersect(desire);
            if cand.is_empty() || w.utility(cand) < 0.0 { ItemSet::EMPTY } else { cand }
        };
        let r = w.best_response(desire, adopted);
        // (1) progressive: superset of the previous adoption
        prop_assert!(adopted.is_subset_of(r));
        // (2) within the desire set
        prop_assert!(r.is_subset_of(desire));
        // (3) non-negative utility unless nothing is adopted
        if !r.is_empty() {
            prop_assert!(w.utility(r) >= 0.0);
        }
        // (4) maximal: no feasible superset beats it
        for sub in desire.difference(adopted).subsets() {
            let t = adopted.union(sub);
            if t != r && w.utility(t) >= 0.0 {
                prop_assert!(
                    w.utility(t) <= w.utility(r) + 1e-9,
                    "{} (U={}) beats chosen {} (U={})",
                    t, w.utility(t), r, w.utility(r)
                );
            }
        }
    }
}

// ---------- utility model invariants ----------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]
    #[test]
    fn from_utilities_always_monotone_value(
        u0 in -3.0f64..5.0,
        u1 in -3.0f64..5.0,
        u01 in -6.0f64..6.0,
    ) {
        let model = UtilityModel::from_utilities(
            2,
            &[
                (ItemSet::singleton(0), u0),
                (ItemSet::singleton(1), u1),
                (ItemSet::full(2), u01),
            ],
            vec![NoiseDist::None; 2],
            0.25,
        );
        prop_assert!(model.value_fn().is_monotone());
        // utilities are reproduced exactly
        prop_assert!((model.deterministic_utility(ItemSet::singleton(0)) - u0).abs() < 1e-9);
        prop_assert!((model.deterministic_utility(ItemSet::full(2)) - u01).abs() < 1e-9);
    }

    #[test]
    fn umin_below_every_item_umax_above(
        u0 in 0.1f64..4.0,
        u1 in 0.1f64..4.0,
        std in 0.0f64..2.0,
    ) {
        let noise = if std == 0.0 { NoiseDist::None } else { NoiseDist::Normal { std } };
        let model = UtilityModel::from_utilities(
            2,
            &[
                (ItemSet::singleton(0), u0),
                (ItemSet::singleton(1), u1),
                (ItemSet::full(2), -1.0),
            ],
            vec![noise; 2],
            0.25,
        );
        let umin = model.umin();
        let t0 = model.expected_truncated_item(0);
        let t1 = model.expected_truncated_item(1);
        prop_assert!(umin <= t0 + 1e-12 && umin <= t1 + 1e-12);
        // E[U+] dominates the deterministic positive part
        prop_assert!(t0 >= u0.max(0.0) - 1e-12);
        use rand::SeedableRng;
        let mut rng = rand::rngs::SmallRng::seed_from_u64(7);
        let umax = model.umax_mc(&mut rng, 2000);
        prop_assert!(umax + 1e-9 >= umin, "umax {} < umin {}", umax, umin);
    }
}

// ---------- estimator invariants ---------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]
    #[test]
    fn welfare_nonnegative_and_bounded(
        seed in 0u64..1000,
        b0 in 0u32..5,
        b1 in 0u32..5,
    ) {
        let g = cwelmax::graph::generators::erdos_renyi(
            40, 160, seed, ProbabilityModel::WeightedCascade);
        let model = UtilityModel::new(
            TableValue::from_table(2, vec![0.0, 4.0, 4.9, 4.9]),
            vec![3.0, 4.0],
            vec![NoiseDist::None; 2],
        );
        let est = WelfareEstimator::new(
            &g, &model, SimulationConfig { samples: 64, threads: 2, base_seed: seed });
        let alloc = Allocation::from_pairs(
            (0..b0).map(|v| (v, 0usize)).chain((0..b1).map(|v| (v + 10, 1usize))));
        let r = est.welfare_report(&alloc);
        // welfare is a sum of non-negative adopted utilities here
        prop_assert!(r.welfare >= -1e-9);
        // bounded by n · best bundle utility
        prop_assert!(r.welfare <= 40.0 * 1.0 + 1e-9);
        // adopters ≤ informed ≤ n
        prop_assert!(r.total_adopters <= r.informed + 1e-9);
        prop_assert!(r.informed <= 40.0 + 1e-9);
        // per-item counts consistent with adopters under pure competition
        prop_assert!((r.total_adoptions() - r.total_adopters).abs() < 1e-6);
    }
}

// ---------- Lemma 2 bounds ----------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]
    #[test]
    fn lemma2_umin_sigma_le_rho_le_umax_sigma(seed in 0u64..500) {
        // noiseless two-item model: umin = 0.9, umax = 1.0 (best bundle)
        let g = cwelmax::graph::generators::erdos_renyi(
            50, 250, seed, ProbabilityModel::WeightedCascade);
        let model = UtilityModel::new(
            TableValue::from_table(2, vec![0.0, 4.0, 4.9, 4.9]),
            vec![3.0, 4.0],
            vec![NoiseDist::None; 2],
        );
        let est = WelfareEstimator::new(
            &g, &model, SimulationConfig { samples: 400, threads: 2, base_seed: seed });
        let alloc = Allocation::from_pairs([(0u32, 0usize), (1, 1), (2, 0)]);
        let seeds = alloc.seed_nodes();
        let rho = est.welfare(&alloc);
        let sigma = est.spread(&seeds);
        let umin = model.umin();
        use rand::SeedableRng;
        let mut rng = rand::rngs::SmallRng::seed_from_u64(7);
        let umax = model.umax_mc(&mut rng, 1);
        // identical worlds (common seeds) → the bound holds sample-wise
        prop_assert!(umin * sigma <= rho + 1e-6, "umin·σ {} > ρ {}", umin * sigma, rho);
        prop_assert!(rho <= umax * sigma + 1e-6, "ρ {} > umax·σ {}", rho, umax * sigma);
    }
}

//! End-to-end test of the §6.4.1 learning pipeline: synthetic adoption
//! logs → discrete-choice estimation → utility model → welfare
//! maximization. The learned model must produce the same *allocation
//! decisions* as the ground truth, closing the loop from raw behavioural
//! data to seed selection.

use cwelmax::diffusion::SimulationConfig;
use cwelmax::graph::generators::preferential_attachment_simple;
use cwelmax::graph::ProbabilityModel;
use cwelmax::prelude::*;
use cwelmax::rrset::ImmParams;
use cwelmax::utility::itemset::all_itemsets;
use cwelmax::utility::learn;
use rand::rngs::SmallRng;
use rand::SeedableRng;

#[test]
fn learned_utilities_reproduce_ground_truth_allocation() {
    // ground truth: the published Table-5 adoption probabilities
    let truth = learn::lastfm_choice_model();
    let total_mass: f64 = all_itemsets(4)
        .filter(|s| !s.is_empty())
        .map(|s| truth.bundle_prob(s))
        .sum();
    let mut rng = SmallRng::seed_from_u64(77);
    let logs = learn::generate_logs(&truth, 150_000, &mut rng);
    let learned = learn::estimate_from_logs(4, &logs, total_mass);

    // learned singleton utilities stay close to the ground truth
    let true_singles: Vec<f64> = (0..4)
        .map(|g| truth.utility(ItemSet::singleton(g)))
        .collect();
    let learned_singles: Vec<f64> = (0..4)
        .map(|g| learned.utility(ItemSet::singleton(g)))
        .collect();
    for (t, l) in true_singles.iter().zip(&learned_singles) {
        assert!((t - l).abs() < 0.1, "learned utility drifted: {l} vs {t}");
    }

    // and they induce the *same seed allocation*
    let g = preferential_attachment_simple(1500, 3, true, 42, ProbabilityModel::WeightedCascade);
    let sim = SimulationConfig {
        samples: 200,
        threads: 0,
        base_seed: 5,
    };
    let imm = ImmParams {
        eps: 0.5,
        ell: 1.0,
        seed: 9,
        threads: 0,
        max_rr_sets: 1_000_000,
    };
    let solve = |singles: &[f64]| {
        let p = Problem::new(g.clone(), configs::lastfm_from_singles(singles))
            .with_uniform_budget(5)
            .with_sim(sim)
            .with_imm(imm);
        SeqGrd::new(SeqGrdMode::NoMarginal).solve(&p).allocation
    };
    let a_true = solve(&true_singles);
    let a_learned = solve(&learned_singles);
    assert_eq!(a_true, a_learned, "learning noise changed the allocation");
}

#[test]
fn learning_is_robust_to_log_volume() {
    // utility ordering must already be right with modest logs
    let truth = learn::lastfm_choice_model();
    let total_mass: f64 = all_itemsets(4)
        .filter(|s| !s.is_empty())
        .map(|s| truth.bundle_prob(s))
        .sum();
    for (n_logs, seed) in [(5_000usize, 1u64), (20_000, 2), (80_000, 3)] {
        let mut rng = SmallRng::seed_from_u64(seed);
        let logs = learn::generate_logs(&truth, n_logs, &mut rng);
        let learned = learn::estimate_from_logs(4, &logs, total_mass);
        let us: Vec<f64> = (0..4)
            .map(|i| learned.utility(ItemSet::singleton(i)))
            .collect();
        assert!(
            us[0] > us[2] && us[1] > us[2] && us[2] > us[3],
            "order broken at {n_logs} logs: {us:?}"
        );
    }
}

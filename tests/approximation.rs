//! Approximation-quality checks on instances small enough to solve
//! exhaustively, plus empirical verification of Lemmas 4–5 (welfare is
//! monotone and submodular in the superior item's seeds under the SupGRD
//! conditions).

use cwelmax::core::SupGrd;
use cwelmax::diffusion::SimulationConfig;
use cwelmax::graph::{generators, GraphBuilder};
use cwelmax::prelude::*;
use cwelmax::rrset::ImmParams;
use cwelmax::utility::{NoiseDist, TableValue};

fn exact_sim() -> SimulationConfig {
    // deterministic graphs + noiseless models: one world is the expectation
    SimulationConfig {
        samples: 1,
        threads: 1,
        base_seed: 0,
    }
}

fn mc_sim(samples: usize) -> SimulationConfig {
    SimulationConfig {
        samples,
        threads: 0,
        base_seed: 11,
    }
}

fn fast_imm() -> ImmParams {
    ImmParams {
        eps: 0.4,
        ell: 1.0,
        seed: 3,
        threads: 0,
        max_rr_sets: 2_000_000,
    }
}

/// Exhaustive optimum over all feasible allocations with one seed per item
/// (two items).
fn exhaustive_opt_two_items(p: &Problem) -> f64 {
    let n = p.graph.num_nodes() as u32;
    let mut best = f64::NEG_INFINITY;
    for v0 in 0..n {
        for v1 in 0..n {
            let alloc = Allocation::from_pairs([(v0, 0usize), (v1, 1usize)]);
            best = best.max(p.evaluate(&alloc));
        }
    }
    best
}

#[test]
fn solvers_near_exhaustive_optimum_on_small_deterministic_instance() {
    // 12-node two-community graph, deterministic edges, noiseless C1-style
    // utilities: the optimum is computable exactly.
    let mut b = GraphBuilder::new(12);
    for v in 1..6u32 {
        b.add_edge(0, v); // community A star
    }
    for v in 7..12u32 {
        b.add_edge(6, v); // community B star
    }
    let g = b.build(cwelmax::graph::ProbabilityModel::Constant(1.0));
    let model = UtilityModel::new(
        TableValue::from_table(2, vec![0.0, 4.0, 4.9, 4.9]),
        vec![3.0, 4.0],
        vec![NoiseDist::None; 2],
    );
    let p = Problem::new(g, model)
        .with_uniform_budget(1)
        .with_sim(exact_sim())
        .with_imm(fast_imm());
    let opt = exhaustive_opt_two_items(&p);
    // optimum: item i (U=1) on one hub, item j (U=0.9) on the other:
    // 6·1.0 + 6·0.9 = 11.4
    assert!((opt - 11.4).abs() < 1e-9, "OPT = {opt}");

    let w_seq = p.evaluate(&SeqGrd::new(SeqGrdMode::NoMarginal).solve(&p).allocation);
    assert!(
        (w_seq - opt).abs() < 1e-9,
        "SeqGRD-NM should find the optimum here: {w_seq} vs {opt}"
    );
    // the theoretical floor umin/umax·(1−1/e−ε)·OPT must certainly hold
    let umin = p.model.umin();
    let mut rng = {
        use rand::SeedableRng;
        rand::rngs::SmallRng::seed_from_u64(1)
    };
    let umax = p.model.umax_mc(&mut rng, 1);
    let floor = umin / umax * (1.0 - 1.0 / std::f64::consts::E - 0.5) * opt;
    assert!(w_seq >= floor);
}

#[test]
fn maxgrd_bound_holds_on_small_instance() {
    // MaxGRD guarantees (1/m)(1−1/e−ε)·OPT when SP = ∅
    let g = generators::erdos_renyi(
        40,
        160,
        21,
        cwelmax::graph::ProbabilityModel::WeightedCascade,
    );
    let model = UtilityModel::new(
        TableValue::from_table(2, vec![0.0, 4.0, 4.9, 4.9]),
        vec![3.0, 4.0],
        vec![NoiseDist::None; 2],
    );
    let p = Problem::new(g, model)
        .with_uniform_budget(1)
        .with_sim(mc_sim(400))
        .with_imm(fast_imm());
    let opt = exhaustive_opt_two_items(&p);
    let w = p.evaluate(&cwelmax::core::MaxGrd.solve(&p).allocation);
    let floor = 0.5 * (1.0 - 1.0 / std::f64::consts::E - 0.4) * opt;
    assert!(
        w >= floor - 1e-6,
        "MaxGRD {w} below its (1/m)(1−1/e−ε) floor {floor} (OPT {opt})"
    );
}

/// The SupGRD regime of Lemmas 4–5: superior item with fixed inferior
/// seeds under pure competition. On a deterministic graph with no noise the
/// welfare is exact, so monotonicity and submodularity can be asserted
/// outright.
#[test]
fn lemmas_4_and_5_welfare_monotone_submodular_in_superior_seeds() {
    let g = generators::grid(4, 5, cwelmax::graph::ProbabilityModel::Constant(1.0));
    // superior item 0 (U=2), inferior item 1 (U=0.5), pure competition
    let model = UtilityModel::from_utilities(
        2,
        &[
            (ItemSet::singleton(0), 2.0),
            (ItemSet::singleton(1), 0.5),
            (ItemSet::full(2), -1.0),
        ],
        vec![NoiseDist::None; 2],
        0.25,
    );
    let fixed = Allocation::from_pairs([(7, 1), (12, 1)]);
    let p = Problem::new(g, model)
        .with_budgets(vec![3, 0])
        .with_fixed_allocation(fixed)
        .with_sim(exact_sim());
    let rho =
        |seeds: &[u32]| p.evaluate(&Allocation::from_pairs(seeds.iter().map(|&v| (v, 0usize))));
    let candidates = [0u32, 5, 10, 15, 19];
    // monotone: adding any seed never decreases welfare
    for &x in &candidates {
        for &y in &candidates {
            if x == y {
                continue;
            }
            assert!(
                rho(&[x, y]) + 1e-9 >= rho(&[x]),
                "monotonicity violated adding {y} to {{{x}}}"
            );
        }
    }
    // submodular: marginal of x over S1 ⊆ S2 does not grow
    for &x in &candidates {
        for &a in &candidates {
            for &b in &candidates {
                if x == a || x == b || a == b {
                    continue;
                }
                let m_small = rho(&[a, x]) - rho(&[a]);
                let m_big = rho(&[a, b, x]) - rho(&[a, b]);
                assert!(
                    m_big <= m_small + 1e-9,
                    "submodularity violated: marg({x}|{{{a}}}) = {m_small} < \
                     marg({x}|{{{a},{b}}}) = {m_big}"
                );
            }
        }
    }
}

#[test]
fn supgrd_matches_exhaustive_on_tiny_instance() {
    // two stars, inferior fixed at one hub; budget 1 for the superior item:
    // exhaustive search over the single seed must agree with SupGRD
    let mut b = GraphBuilder::new(20);
    for v in 1..10u32 {
        b.add_edge(0, v);
    }
    for v in 11..20u32 {
        b.add_edge(10, v);
    }
    let g = b.build(cwelmax::graph::ProbabilityModel::Constant(1.0));
    let model = UtilityModel::from_utilities(
        2,
        &[
            (ItemSet::singleton(0), 2.0),
            (ItemSet::singleton(1), 0.5),
            (ItemSet::full(2), -1.0),
        ],
        vec![NoiseDist::None; 2],
        0.25,
    );
    let p = Problem::new(g, model)
        .with_budgets(vec![1, 0])
        .with_fixed_allocation(Allocation::from_pairs([(0, 1)]))
        .with_sim(exact_sim())
        .with_imm(fast_imm());
    let mut opt = (f64::NEG_INFINITY, 0u32);
    for v in 0..20u32 {
        let w = p.evaluate(&Allocation::from_pairs([(v, 0usize)]));
        if w > opt.0 {
            opt = (w, v);
        }
    }
    let s = SupGrd.solve(&p);
    let w = p.evaluate(&s.allocation);
    assert!(
        (w - opt.0).abs() < 1e-9,
        "SupGRD {w} (seed {:?}) vs OPT {} (seed {})",
        s.allocation.seeds_of(0),
        opt.0,
        opt.1
    );
    // displacing the inferior hub (gain 1.5/node over 10 nodes + full gain
    // elsewhere) vs taking the free hub (gain 2/node over 10 nodes):
    // free hub wins — verify the concrete seed too
    assert_eq!(s.allocation.seeds_of(0), vec![10]);
}

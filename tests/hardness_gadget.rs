//! Executable Theorem 2: the SET-COVER reduction creates the promised
//! welfare gap between YES- and NO-instances, and the timing race between
//! `i1`, the `{i2,i3}` bundle and `i4` plays out exactly as the proof
//! scripts it.

use cwelmax::diffusion::SimulationConfig;
use cwelmax::graph::generators::gadget::{
    build_gadget, example_no_instance, example_yes_instance, GadgetInstance, SetCoverInstance,
};
use cwelmax::prelude::*;

const COPIES: usize = 60;
const D_PER_COPY: usize = 60;
const C: f64 = 0.4;

struct GadgetProblem {
    gi: GadgetInstance,
    problem: Problem,
}

fn gadget_problem(sc: SetCoverInstance) -> GadgetProblem {
    let k = sc.k;
    let gi = build_gadget(sc, COPIES, D_PER_COPY);
    let mut fixed = Allocation::new();
    for &a in &gi.a_nodes {
        fixed.add(a, 1); // i2 seeds
    }
    for &b in &gi.b_nodes {
        fixed.add(b, 2); // i3 seeds
    }
    for &j in &gi.j_nodes {
        fixed.add(j, 3); // i4 seeds
    }
    let problem = Problem::new(gi.graph.clone(), configs::hardness_table1())
        .with_budgets(vec![k, 0, 0, 0])
        .with_fixed_allocation(fixed)
        // deterministic network + noiseless model: one world is exact
        .with_sim(SimulationConfig {
            samples: 1,
            threads: 1,
            base_seed: 0,
        });
    GadgetProblem { gi, problem }
}

fn best_s_node_welfare(gp: &GadgetProblem, k: usize) -> f64 {
    // exhaustive k-subsets of the s nodes (instance is tiny)
    let r = gp.gi.s_nodes.len();
    let mut best = f64::NEG_INFINITY;
    let mut choose = vec![0usize; k];
    fn rec(
        gp: &GadgetProblem,
        r: usize,
        k: usize,
        start: usize,
        cur: &mut Vec<usize>,
        best: &mut f64,
    ) {
        if cur.len() == k {
            let alloc = Allocation::from_pairs(cur.iter().map(|&s| (gp.gi.s_nodes[s], 0)));
            let w = gp.problem.evaluate(&alloc);
            if w > *best {
                *best = w;
            }
            return;
        }
        for s in start..r {
            cur.push(s);
            rec(gp, r, k, s + 1, cur, best);
            cur.pop();
        }
    }
    choose.clear();
    rec(gp, r, k, 0, &mut choose, &mut best);
    best
}

fn threshold(gp: &GadgetProblem) -> f64 {
    let n_d = (gp.gi.copies * gp.gi.d_per_copy) as f64;
    C * n_d
        * gp.problem
            .model
            .deterministic_utility(ItemSet::from_items([0, 3]))
}

#[test]
fn yes_instance_welfare_exceeds_the_gap_threshold() {
    let gp = gadget_problem(example_yes_instance());
    let w = best_s_node_welfare(&gp, 2);
    let t = threshold(&gp);
    assert!(w > t, "YES welfare {w} must exceed c·N²·U({{i1,i4}}) = {t}");
    // the proof's Claim 2: above N² · U({i1,i4}) outright
    let n_d = (gp.gi.copies * gp.gi.d_per_copy) as f64;
    let u14 = gp
        .problem
        .model
        .deterministic_utility(ItemSet::from_items([0, 3]));
    assert!(
        w > n_d * u14,
        "YES welfare {w} must exceed N²·U({{i1,i4}}) = {}",
        n_d * u14
    );
}

#[test]
fn no_instance_welfare_stays_below_the_gap_threshold() {
    let gp = gadget_problem(example_no_instance());
    // s-node seeding
    let w_s = best_s_node_welfare(&gp, 1);
    let t = threshold(&gp);
    assert!(w_s < t, "NO welfare via s-nodes {w_s} must stay below {t}");
    // g-node seeding (the proof's strongest alternative): seed one g node
    let g_alloc = Allocation::from_pairs([(gp.gi.g_nodes[0][0], 0)]);
    let w_g = gp.problem.evaluate(&g_alloc);
    assert!(w_g < t, "NO welfare via g-nodes {w_g} must stay below {t}");
}

#[test]
fn yes_instance_d_nodes_adopt_i1_and_i4() {
    // trace the race: with the covering s nodes seeded, every d node ends
    // with the high-utility bundle {i1, i4}
    let gp = gadget_problem(example_yes_instance());
    let alloc = Allocation::from_pairs([(gp.gi.s_nodes[0], 0), (gp.gi.s_nodes[1], 0)]);
    let report = gp.problem.evaluate_report(&alloc);
    let n_d = (gp.gi.copies * gp.gi.d_per_copy) as f64;
    // every d node adopts i1 (plus g, f nodes and the seeds)
    assert!(
        report.adoption_counts[0] >= n_d,
        "i1 adoptions {}",
        report.adoption_counts[0]
    );
    // every d node and the l/m/o chains and j seeds adopt i4
    assert!(
        report.adoption_counts[3] >= n_d,
        "i4 adoptions {}",
        report.adoption_counts[3]
    );
}

#[test]
fn no_instance_bundle_blocks_i4_on_d_nodes() {
    let gp = gadget_problem(example_no_instance());
    // best single s node still leaves an uncovered element
    let alloc = Allocation::from_pairs([(gp.gi.s_nodes[0], 0)]);
    let report = gp.problem.evaluate_report(&alloc);
    let n_d = (gp.gi.copies * gp.gi.d_per_copy) as f64;
    // all d nodes adopt the {i2, i3} bundle instead of {i1, i4}
    assert!(
        report.adoption_counts[1] >= n_d && report.adoption_counts[2] >= n_d,
        "d nodes must adopt the bundle: i2 {} i3 {}",
        report.adoption_counts[1],
        report.adoption_counts[2]
    );
    // i4 is confined to the j/l/m/o side structure: 4 · n · copies + n seeds
    let side =
        (4 * gp.gi.set_cover_elements() * gp.gi.copies) as f64 + gp.gi.set_cover_elements() as f64;
    assert!(
        report.adoption_counts[3] <= side,
        "i4 adoptions {} must stay on the side chains (≤ {side})",
        report.adoption_counts[3]
    );
}

/// Accessor used by the tests (kept here to avoid widening the public API).
trait GadgetExt {
    fn set_cover_elements(&self) -> usize;
}

impl GadgetExt for GadgetInstance {
    fn set_cover_elements(&self) -> usize {
        self.set_cover.num_elements
    }
}

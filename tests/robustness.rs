//! Failure-injection / degenerate-input robustness: every solver must
//! behave sanely on empty graphs, dead edges, hopeless utilities, and
//! budget corner cases — no panics, feasible (possibly empty) output.

use cwelmax::core::baselines::{RoundRobin, Snake, Tcim};
use cwelmax::core::{MaxGrd, SupGrd};
use cwelmax::diffusion::SimulationConfig;
use cwelmax::graph::{generators, GraphBuilder};
use cwelmax::prelude::*;
use cwelmax::rrset::ImmParams;
use cwelmax::utility::{NoiseDist, TableValue};

fn tiny_sim() -> SimulationConfig {
    SimulationConfig {
        samples: 20,
        threads: 1,
        base_seed: 1,
    }
}

fn tiny_imm() -> ImmParams {
    ImmParams {
        eps: 0.7,
        ell: 1.0,
        seed: 1,
        threads: 1,
        max_rr_sets: 200_000,
    }
}

fn solvers() -> Vec<Box<dyn CwelMaxAlgorithm>> {
    vec![
        Box::new(SeqGrd::new(SeqGrdMode::Marginal)),
        Box::new(SeqGrd::new(SeqGrdMode::NoMarginal)),
        Box::new(MaxGrd),
        Box::new(SupGrd),
        Box::new(Tcim),
        Box::new(RoundRobin),
        Box::new(Snake),
    ]
}

fn check_all(p: &Problem) {
    for s in solvers() {
        let sol = s.solve(p);
        p.check_feasible(&sol.allocation)
            .unwrap_or_else(|e| panic!("{}: {e}", s.name()));
        // evaluation must not panic either
        let _ = p.evaluate(&sol.allocation);
    }
}

#[test]
fn single_node_graph() {
    let g = generators::path(1, ProbabilityModel::Constant(1.0));
    let p = Problem::new(g, configs::two_item_config(TwoItemConfig::C1))
        .with_uniform_budget(1)
        .with_sim(tiny_sim())
        .with_imm(tiny_imm());
    check_all(&p);
}

#[test]
fn all_edges_dead() {
    let g = generators::erdos_renyi(30, 120, 3, ProbabilityModel::Constant(0.0));
    let p = Problem::new(g, configs::two_item_config(TwoItemConfig::C1))
        .with_uniform_budget(2)
        .with_sim(tiny_sim())
        .with_imm(tiny_imm());
    check_all(&p);
}

#[test]
fn graph_with_no_edges() {
    let g = GraphBuilder::new(10).build(ProbabilityModel::WeightedCascade);
    let p = Problem::new(g, configs::two_item_config(TwoItemConfig::C2))
        .with_uniform_budget(3)
        .with_sim(tiny_sim())
        .with_imm(tiny_imm());
    check_all(&p);
}

#[test]
fn budget_exceeds_node_count() {
    let g = generators::path(4, ProbabilityModel::Constant(1.0));
    let p = Problem::new(g, configs::two_item_config(TwoItemConfig::C1))
        .with_uniform_budget(50)
        .with_sim(tiny_sim())
        .with_imm(tiny_imm());
    // allocations are feasible (budgets are upper bounds); welfare finite
    for s in solvers() {
        let sol = s.solve(&p);
        p.check_feasible(&sol.allocation).unwrap();
        assert!(p.evaluate(&sol.allocation).is_finite());
    }
}

#[test]
fn hopeless_utilities_yield_zero_welfare() {
    // every itemset has negative utility: nothing is ever adopted
    let g = generators::path(6, ProbabilityModel::Constant(1.0));
    let model = UtilityModel::new(
        TableValue::from_table(2, vec![0.0, 1.0, 1.0, 1.5]),
        vec![5.0, 5.0], // prices far above values
        vec![NoiseDist::None; 2],
    );
    let p = Problem::new(g, model)
        .with_uniform_budget(2)
        .with_sim(tiny_sim())
        .with_imm(tiny_imm());
    for s in solvers() {
        let sol = s.solve(&p);
        let w = p.evaluate(&sol.allocation);
        assert!(w.abs() < 1e-9, "{}: welfare {w} should be 0", s.name());
    }
}

#[test]
fn everything_fixed_nothing_to_do() {
    let g = generators::path(5, ProbabilityModel::Constant(1.0));
    let p = Problem::new(g, configs::two_item_config(TwoItemConfig::C1))
        .with_uniform_budget(2)
        .with_fixed_allocation(Allocation::from_pairs([(0, 0), (1, 1)]))
        .with_sim(tiny_sim())
        .with_imm(tiny_imm());
    // both items appear in SP → I2 = ∅ → all solvers return empty
    for s in solvers() {
        let sol = s.solve(&p);
        assert!(
            sol.allocation.is_empty(),
            "{} should return empty",
            s.name()
        );
    }
}

#[test]
fn extreme_noise_does_not_break_estimates() {
    let g = generators::erdos_renyi(40, 160, 9, ProbabilityModel::WeightedCascade);
    let model = UtilityModel::new(
        TableValue::from_table(2, vec![0.0, 4.0, 4.9, 4.9]),
        vec![3.0, 4.0],
        vec![NoiseDist::Normal { std: 100.0 }; 2],
    );
    let p = Problem::new(g, model)
        .with_uniform_budget(2)
        .with_sim(tiny_sim())
        .with_imm(tiny_imm());
    let sol = SeqGrd::new(SeqGrdMode::NoMarginal).solve(&p);
    let w = p.evaluate(&sol.allocation);
    assert!(w.is_finite() && w >= 0.0, "welfare {w}");
}

#[test]
fn disconnected_components_are_all_reachable_by_solvers() {
    // ten 3-node islands; with budget 5 each item should land on distinct
    // islands (coverage), never panic
    let mut b = GraphBuilder::new(30);
    for island in 0..10u32 {
        let base = island * 3;
        b.add_edge(base, base + 1);
        b.add_edge(base, base + 2);
    }
    let g = b.build(ProbabilityModel::Constant(1.0));
    let p = Problem::new(g, configs::two_item_config(TwoItemConfig::C1))
        .with_uniform_budget(5)
        .with_sim(tiny_sim())
        .with_imm(tiny_imm());
    let sol = SeqGrd::new(SeqGrdMode::NoMarginal).solve(&p);
    p.check_feasible(&sol.allocation).unwrap();
    // item 0's five seeds must sit on five distinct islands
    let mut islands: Vec<u32> = sol.allocation.seeds_of(0).iter().map(|v| v / 3).collect();
    islands.sort_unstable();
    islands.dedup();
    assert_eq!(islands.len(), 5, "seeds should spread across islands");
}

//! # cwelmax — Maximizing Social Welfare in a Competitive Diffusion Model
//!
//! Facade crate re-exporting the full reproduction of Banerjee, Chen &
//! Lakshmanan (PVLDB 2020). See the README for the architecture overview and
//! `DESIGN.md` for the system inventory.
//!
//! The sub-crates are:
//!
//! * [`graph`] — directed probabilistic graph substrate;
//! * [`utility`] — itemset utility model (value, price, noise) and the
//!   paper's utility configurations;
//! * [`diffusion`] — the UIC diffusion engine and Monte-Carlo estimators;
//! * [`rrset`] — reverse-reachable-set machinery (IMM, PRIMA+, weighted
//!   RR sets);
//! * [`core`] — the CWelMax algorithms (SeqGRD, SeqGRD-NM, MaxGRD, SupGRD)
//!   and all baselines;
//! * [`obs`] — std-only observability kit: metrics registry, lock-free
//!   log2-bucket latency histograms, and a structured NDJSON logger,
//!   shared by engine, store, and server;
//! * [`engine`] — persistent RR-set index (versioned, checksummed
//!   snapshots) and the multi-campaign query engine that answers many
//!   allocation queries over one prebuilt index without resampling;
//! * [`store`] — sharded on-disk index store (`cwelmax index shard`):
//!   a manifest opened eagerly plus lazily loaded shard files, so server
//!   cold-start is `O(manifest)` instead of `O(index)`;
//! * [`server`] — long-lived TCP front-end over one `CampaignEngine`
//!   (newline-delimited JSON, versioned wire protocol; `cwelmax serve`);
//! * [`client`] — typed client for that server (`hello` negotiation of
//!   protocol v2 with automatic v1 fallback, structured errors,
//!   reconnect-once-on-broken-pipe);
//! * [`source`] — the shared `--index`-vs-`--store` resolution every
//!   serving subcommand goes through ([`EngineSource`]).
//!
//! ```
//! use cwelmax::prelude::*;
//!
//! // A tiny fresh campaign: two competing items on a 100-node network.
//! let graph = cwelmax::graph::generators::erdos_renyi(
//!     100, 400, 7, ProbabilityModel::WeightedCascade);
//! let utility = configs::two_item_config(TwoItemConfig::C1);
//! let problem = Problem::new(graph, utility)
//!     .with_budgets(vec![5, 5])
//!     .with_mc_samples(200);
//! let result = SeqGrd::new(SeqGrdMode::NoMarginal).solve(&problem);
//! assert_eq!(result.allocation.len(), 10);
//! assert!(problem.evaluate(&result.allocation) > 0.0);
//! ```

pub use cwelmax_client as client;
pub use cwelmax_core as core;
pub use cwelmax_diffusion as diffusion;
pub use cwelmax_engine as engine;
pub use cwelmax_graph as graph;
pub use cwelmax_obs as obs;
pub use cwelmax_rrset as rrset;
pub use cwelmax_server as server;
pub use cwelmax_store as store;
pub use cwelmax_utility as utility;

pub mod source;
pub use source::EngineSource;

/// One-stop imports for applications.
pub mod prelude {
    pub use crate::source::EngineSource;
    pub use cwelmax_client::CwelmaxClient;
    pub use cwelmax_core::prelude::*;
    pub use cwelmax_diffusion::{Allocation, WelfareEstimator};
    pub use cwelmax_engine::{
        CampaignEngine, CampaignQuery, EngineBuilder, QueryAlgorithm, RrIndex,
    };
    pub use cwelmax_graph::{Graph, GraphBuilder, ProbabilityModel};
    pub use cwelmax_server::{CampaignServer, ServerHandle};
    pub use cwelmax_store::{FromStore, ShardedIndex};
    pub use cwelmax_utility::configs::{self, TwoItemConfig};
    pub use cwelmax_utility::{ItemId, ItemSet, UtilityModel};
}

//! `cwelmax` — command-line CWelMax solver.
//!
//! Solve a competitive welfare-maximization instance from files:
//!
//! ```text
//! cwelmax --graph edges.txt --config model.json --budgets 10,10 \
//!         [--algorithm seqgrd-nm] [--samples 1000] [--eps 0.5] \
//!         [--fixed fixed.json] [--seed 7] [--json]
//! ```
//!
//! * `--graph` — SNAP-style edge list (`u v [p]`; without probabilities the
//!   weighted-cascade model `1/din(v)` is applied);
//! * `--config` — a JSON-serialized [`cwelmax::utility::UtilityModel`]
//!   (see `examples/model.json` emitted by `--emit-example-config`);
//! * `--budgets` — comma-separated per-item budgets;
//! * `--fixed` — optional JSON allocation `[[node, item], ...]` for `SP`;
//! * `--algorithm` — `seqgrd | seqgrd-nm | maxgrd | supgrd | best-of |
//!   tcim | round-robin | snake` (default `seqgrd-nm`).
//!
//! Prints the chosen allocation, its estimated welfare and per-item
//! adoption counts; `--json` switches to machine-readable output.

use cwelmax::core::baselines::{RoundRobin, Snake, Tcim};
use cwelmax::core::{best_of, MaxGrd, SupGrd};
use cwelmax::diffusion::SimulationConfig;
use cwelmax::graph::{io as graph_io, ProbabilityModel};
use cwelmax::prelude::*;
use cwelmax::rrset::ImmParams;

struct Args {
    graph: Option<String>,
    config: Option<String>,
    budgets: Vec<usize>,
    fixed: Option<String>,
    algorithm: String,
    samples: usize,
    eps: f64,
    seed: u64,
    json: bool,
    emit_example: bool,
}

fn parse_args() -> Args {
    let mut a = Args {
        graph: None,
        config: None,
        budgets: Vec::new(),
        fixed: None,
        algorithm: "seqgrd-nm".into(),
        samples: 1000,
        eps: 0.5,
        seed: 0x5EED,
        json: false,
        emit_example: false,
    };
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    let next = |i: &mut usize, what: &str| -> String {
        *i += 1;
        argv.get(*i).unwrap_or_else(|| die(&format!("{what} expects a value"))).clone()
    };
    while i < argv.len() {
        match argv[i].as_str() {
            "--graph" => a.graph = Some(next(&mut i, "--graph")),
            "--config" => a.config = Some(next(&mut i, "--config")),
            "--fixed" => a.fixed = Some(next(&mut i, "--fixed")),
            "--algorithm" => a.algorithm = next(&mut i, "--algorithm"),
            "--budgets" => {
                a.budgets = next(&mut i, "--budgets")
                    .split(',')
                    .map(|s| s.trim().parse().unwrap_or_else(|_| die("bad budget")))
                    .collect()
            }
            "--samples" => {
                a.samples = next(&mut i, "--samples").parse().unwrap_or_else(|_| die("bad samples"))
            }
            "--eps" => a.eps = next(&mut i, "--eps").parse().unwrap_or_else(|_| die("bad eps")),
            "--seed" => a.seed = next(&mut i, "--seed").parse().unwrap_or_else(|_| die("bad seed")),
            "--json" => a.json = true,
            "--emit-example-config" => a.emit_example = true,
            "--help" | "-h" => {
                eprintln!(
                    "usage: cwelmax --graph EDGES --config MODEL.json --budgets B0,B1,… \
                     [--algorithm seqgrd|seqgrd-nm|maxgrd|supgrd|best-of|tcim|round-robin|snake] \
                     [--fixed FIXED.json] [--samples N] [--eps E] [--seed S] [--json] \
                     [--emit-example-config]"
                );
                std::process::exit(0);
            }
            other => die(&format!("unknown argument `{other}`")),
        }
        i += 1;
    }
    a
}

fn die(msg: &str) -> ! {
    eprintln!("error: {msg}");
    std::process::exit(2);
}

fn main() {
    let args = parse_args();
    if args.emit_example {
        // the paper's C1 configuration, ready to edit
        let model = configs::two_item_config(TwoItemConfig::C1);
        println!("{}", serde_json::to_string_pretty(&model).expect("serializable"));
        return;
    }
    let graph_path = args.graph.as_deref().unwrap_or_else(|| die("--graph is required"));
    let config_path = args.config.as_deref().unwrap_or_else(|| die("--config is required"));
    if args.budgets.is_empty() {
        die("--budgets is required");
    }

    let graph = graph_io::read_edge_list_file(graph_path, ProbabilityModel::WeightedCascade)
        .unwrap_or_else(|e| die(&format!("cannot read graph: {e}")));
    let model: UtilityModel = serde_json::from_str(
        &std::fs::read_to_string(config_path)
            .unwrap_or_else(|e| die(&format!("cannot read config: {e}"))),
    )
    .unwrap_or_else(|e| die(&format!("bad model JSON: {e}")));
    if args.budgets.len() != model.num_items() {
        die(&format!(
            "budgets ({}) must match the model's item count ({})",
            args.budgets.len(),
            model.num_items()
        ));
    }
    let fixed = match &args.fixed {
        None => Allocation::new(),
        Some(path) => {
            let pairs: Vec<(u32, usize)> = serde_json::from_str(
                &std::fs::read_to_string(path)
                    .unwrap_or_else(|e| die(&format!("cannot read fixed allocation: {e}"))),
            )
            .unwrap_or_else(|e| die(&format!("bad fixed-allocation JSON: {e}")));
            Allocation::from_pairs(pairs)
        }
    };

    let problem = Problem::new(graph, model)
        .with_budgets(args.budgets.clone())
        .with_fixed_allocation(fixed)
        .with_sim(SimulationConfig { samples: args.samples, threads: 0, base_seed: args.seed })
        .with_imm(ImmParams {
            eps: args.eps,
            ell: 1.0,
            seed: args.seed,
            threads: 0,
            max_rr_sets: 50_000_000,
        });

    let solution = match args.algorithm.as_str() {
        "seqgrd" => SeqGrd::new(SeqGrdMode::Marginal).solve(&problem),
        "seqgrd-nm" => SeqGrd::new(SeqGrdMode::NoMarginal).solve(&problem),
        "maxgrd" => MaxGrd.solve(&problem),
        "supgrd" => {
            if let Err(issues) = SupGrd::check_conditions(&problem) {
                eprintln!("warning: SupGRD conditions violated (bound forfeited):");
                for i in &issues {
                    eprintln!("  - {i}");
                }
            }
            SupGrd.solve(&problem)
        }
        "best-of" => best_of(&problem, SeqGrd::new(SeqGrdMode::Marginal)),
        "tcim" => Tcim.solve(&problem),
        "round-robin" => RoundRobin.solve(&problem),
        "snake" => Snake.solve(&problem),
        other => die(&format!("unknown algorithm `{other}`")),
    };

    let report = problem.evaluate_report(&solution.allocation);
    if args.json {
        let out = serde_json::json!({
            "algorithm": solution.algorithm,
            "allocation": solution.allocation.pairs(),
            "welfare": report.welfare,
            "adoption_counts": report.adoption_counts,
            "total_adopters": report.total_adopters,
            "solve_seconds": solution.elapsed.as_secs_f64(),
        });
        println!("{}", serde_json::to_string_pretty(&out).expect("serializable"));
    } else {
        println!("algorithm: {}", solution.algorithm);
        println!("solve time: {:?}", solution.elapsed);
        println!("welfare (±MC noise): {:.2}", report.welfare);
        for (i, c) in report.adoption_counts.iter().enumerate() {
            println!("  item {i}: {} seeds, {c:.1} expected adopters",
                solution.allocation.seeds_of(i).len());
        }
        println!("allocation: {:?}", solution.allocation.pairs());
    }
}

//! `cwelmax` — command-line CWelMax solver and campaign-engine driver.
//!
//! ## Solve one instance (cold path)
//!
//! ```text
//! cwelmax --graph edges.txt --config model.json --budgets 10,10 \
//!         [--algorithm seqgrd-nm] [--samples 1000] [--eps 0.5] \
//!         [--fixed fixed.json] [--seed 7] [--json]
//! ```
//!
//! * `--graph` — SNAP-style edge list (`u v [p]`; without probabilities the
//!   weighted-cascade model `1/din(v)` is applied);
//! * `--config` — a JSON-serialized [`cwelmax::utility::UtilityModel`]
//!   (see `examples/model.json` emitted by `--emit-example-config`);
//! * `--budgets` — comma-separated per-item budgets;
//! * `--fixed` — optional JSON allocation `[[node, item], ...]` for `SP`;
//! * `--algorithm` — `seqgrd | seqgrd-nm | maxgrd | supgrd | best-of |
//!   tcim | round-robin | snake` (default `seqgrd-nm`).
//!
//! ## Build a persistent RR-set index (expensive, once per graph)
//!
//! ```text
//! cwelmax index build --graph edges.txt --out index.cwrx \
//!         [--budget-cap 20] [--eps 0.5] [--ell 1.0] [--seed S] [--threads T] \
//!         [--condition 1,5,9]... [--sharded --shards N]
//! ```
//!
//! Each `--condition` (repeatable) persists an SP node set in the
//! snapshot's conditioned-views section (format v2): loading engines
//! derive those SP-conditioned views eagerly, so the first follow-up
//! query against a persisted prior allocation is already warm.
//!
//! ## Build a sharded store instead (lazy loading, O(manifest) open)
//!
//! ```text
//! cwelmax index shard --graph edges.txt --out index.store --shards 8 \
//!         [--budget-cap 20] [--eps 0.5] [--ell 1.0] [--seed S] [--threads T]
//! ```
//!
//! `index shard` (equivalently `index build --sharded`; passing
//! `--shards` alone also implies it) writes `--out` as
//! a **directory**: a `manifest.bin` carrying the build metadata, the
//! precomputed budget-cap greedy pool, and per-shard integrity records,
//! plus `--shards` shard files each holding a contiguous CRC-checked
//! range of RR sets (written in parallel). Servers open the manifest
//! eagerly and fault shards in lazily — fresh campaigns are answered
//! from the persisted pool without reading a single shard.
//!
//! ## Grow a store in place (θ top-up) and fold the journal
//!
//! ```text
//! cwelmax index topup --store index.store --graph edges.txt --theta N
//! cwelmax index compact --store index.store [--shards N]
//! ```
//!
//! `index topup` continues the build's deterministic sampling stream to
//! at least `--theta` sets, fsyncing the delta into the store's
//! append-only `journal.bin` — no rebuild, answers bit-identical to a
//! cold build at the same `(seed, theta)`. `index compact` folds the
//! journal into fresh shard files (write-then-rename; the journal is
//! removed only after the new manifest is durable). A live server does
//! the same over the wire via `{"v": 2, "type": "topup", "theta": N}`.
//!
//! ## Answer a batch of campaigns from the index (warm, no resampling)
//!
//! ```text
//! cwelmax query-batch --graph edges.txt --index index.cwrx \
//!         --queries queries.json [--threads N] [--json]
//! ```
//!
//! (`--store index.store` serves the batch from a sharded store instead
//! of a monolithic snapshot.)
//!
//! `queries.json` is an array of campaign objects:
//!
//! ```json
//! [{"config": "C1", "budgets": [5, 5], "algorithm": "seqgrd-nm",
//!   "sp": [[17, 1]], "samples": 1000, "seed": 7}]
//! ```
//!
//! where `config` is either a named paper configuration (`C1`–`C4`) or an
//! inline JSON utility model, `algorithm` is one of `seqgrd-nm | seqgrd |
//! maxgrd | best-of`, and the optional `sp` (`[[node, item], …]`) makes
//! the entry a **follow-up** campaign conditioned on that fixed prior
//! allocation — served warm from an SP-conditioned view of the index,
//! still with zero resampling. A malformed query produces a per-query
//! error entry; the rest of the batch still runs.
//!
//! ## Serve campaigns over TCP (long-lived, index loaded once)
//!
//! ```text
//! cwelmax serve --graph edges.txt --index index.cwrx \
//!         [--addr 127.0.0.1:7878] [--cache-cap N] [--max-conns N] \
//!         [--log-level error|warn|info|debug|trace] [--slow-query-ms N] \
//!         [--metrics-dump SECS] [--metrics-file PATH] \
//!         [--trace-sample RATE] [--trace-buffer N]
//! cwelmax serve --graph edges.txt --store index.store [...]
//! ```
//!
//! With `--store`, startup reads only the store's manifest (cold-open is
//! `O(manifest)`, not `O(index)`) and shard files are loaded lazily as
//! queries touch them — `{"type": "stats"}` reports `shards_total` /
//! `shards_loaded` / `store_bytes_on_disk` so the lazy path is
//! observable over the wire.
//!
//! Newline-delimited JSON: each request line is a query object (same shape
//! as a `query-batch` entry — SP-bearing follow-ups included — plus
//! optional `"id"` echoed back), a `{"type": "batch", "queries": [...]}`
//! envelope answered on one line, `{"type": "stats"}`, or
//! `{"type": "shutdown"}`; each response line carries `"ok": true|false`.
//! `--max-conns` refuses connections beyond the limit with a JSON "server
//! busy" line instead of spawning unbounded threads. See
//! `cwelmax_engine::wire`.
//!
//! Observability: `{"v": 2, "type": "metrics"}` scrapes the full metrics
//! registry (counters, gauges, latency histograms across engine, store,
//! and server); `--metrics-dump SECS` appends the same snapshot as one
//! NDJSON line every `SECS` seconds to `--metrics-file` (stderr when
//! omitted). `--log-level` tunes the structured NDJSON logger (default
//! `warn`); `--slow-query-ms N` logs any request slower than `N` ms —
//! and marks its trace as always-keep. `--trace-sample RATE` records a
//! span tree per request, tail-retaining errors, slow requests, and a
//! `RATE` sample of the rest into a ring of `--trace-buffer N` traces
//! (default 256), scraped via `{"v": 2, "type": "traces"}`; a client may
//! also pin one request by sending a hex `"trace"` id, echoed on the
//! answer.
//!
//! Prints the chosen allocation(s), estimated welfare and per-item
//! adoption counts; `--json` switches to machine-readable output.

use cwelmax::core::baselines::{RoundRobin, Snake, Tcim};
use cwelmax::core::{best_of, MaxGrd, SupGrd};
use cwelmax::diffusion::SimulationConfig;
use cwelmax::engine::wire::Protocol;
use cwelmax::engine::{self, wire, CampaignEngine, CampaignQuery, RrIndex};
use cwelmax::graph::{io as graph_io, ProbabilityModel};
use cwelmax::obs;
use cwelmax::prelude::*;
use cwelmax::rrset::ImmParams;
use cwelmax::server::CampaignServer;
use cwelmax::store::write_store;
use std::sync::Arc;

struct Args {
    graph: Option<String>,
    config: Option<String>,
    budgets: Vec<usize>,
    fixed: Option<String>,
    algorithm: String,
    samples: usize,
    eps: f64,
    seed: u64,
    json: bool,
    emit_example: bool,
}

fn parse_args() -> Args {
    let mut a = Args {
        graph: None,
        config: None,
        budgets: Vec::new(),
        fixed: None,
        algorithm: "seqgrd-nm".into(),
        samples: 1000,
        eps: 0.5,
        seed: 0x5EED,
        json: false,
        emit_example: false,
    };
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    let next = |i: &mut usize, what: &str| -> String {
        *i += 1;
        argv.get(*i)
            .unwrap_or_else(|| die(&format!("{what} expects a value")))
            .clone()
    };
    while i < argv.len() {
        match argv[i].as_str() {
            "--graph" => a.graph = Some(next(&mut i, "--graph")),
            "--config" => a.config = Some(next(&mut i, "--config")),
            "--fixed" => a.fixed = Some(next(&mut i, "--fixed")),
            "--algorithm" => a.algorithm = next(&mut i, "--algorithm"),
            "--budgets" => {
                a.budgets = next(&mut i, "--budgets")
                    .split(',')
                    .map(|s| s.trim().parse().unwrap_or_else(|_| die("bad budget")))
                    .collect()
            }
            "--samples" => {
                a.samples = next(&mut i, "--samples")
                    .parse()
                    .unwrap_or_else(|_| die("bad samples"))
            }
            "--eps" => {
                a.eps = next(&mut i, "--eps")
                    .parse()
                    .unwrap_or_else(|_| die("bad eps"))
            }
            "--seed" => {
                a.seed = next(&mut i, "--seed")
                    .parse()
                    .unwrap_or_else(|_| die("bad seed"))
            }
            "--json" => a.json = true,
            "--emit-example-config" => a.emit_example = true,
            "--help" | "-h" => {
                eprintln!(
                    "usage: cwelmax --graph EDGES --config MODEL.json --budgets B0,B1,… \
                     [--algorithm seqgrd|seqgrd-nm|maxgrd|supgrd|best-of|tcim|round-robin|snake] \
                     [--fixed FIXED.json] [--samples N] [--eps E] [--seed S] [--json] \
                     [--emit-example-config]"
                );
                std::process::exit(0);
            }
            other => die(&format!("unknown argument `{other}`")),
        }
        i += 1;
    }
    a
}

fn die(msg: &str) -> ! {
    eprintln!("error: {msg}");
    std::process::exit(2);
}

/// Tiny flag cursor shared by the subcommand parsers.
struct Flags {
    argv: Vec<String>,
    i: usize,
}

impl Flags {
    fn new(argv: Vec<String>) -> Flags {
        Flags { argv, i: 0 }
    }

    fn next_flag(&mut self) -> Option<String> {
        let f = self.argv.get(self.i).cloned();
        self.i += 1;
        f
    }

    fn value(&mut self, what: &str) -> String {
        let v = self
            .argv
            .get(self.i)
            .unwrap_or_else(|| die(&format!("{what} expects a value")))
            .clone();
        self.i += 1;
        v
    }

    fn parsed<T: std::str::FromStr>(&mut self, what: &str) -> T {
        self.value(what)
            .parse()
            .unwrap_or_else(|_| die(&format!("bad value for {what}")))
    }
}

fn load_graph(path: &str) -> cwelmax::graph::Graph {
    graph_io::read_edge_list_file(path, ProbabilityModel::WeightedCascade)
        .unwrap_or_else(|e| die(&format!("cannot read graph: {e}")))
}

/// `cwelmax index build …` / `cwelmax index shard …` — sample an RR-set
/// index and persist it as a monolithic snapshot or a sharded store.
/// `index shard` is sharded by default; `index build --sharded` is the
/// equivalent spelling.
fn cmd_index_build(argv: Vec<String>, mut sharded: bool) {
    let mut graph_path = None;
    let mut out = None;
    let mut budget_cap: u32 = 20;
    let mut shards: usize = 8;
    let mut conditions: Vec<Vec<u32>> = Vec::new();
    let mut params = ImmParams {
        threads: 0,
        max_rr_sets: 50_000_000,
        ..Default::default()
    };
    let mut f = Flags::new(argv);
    while let Some(flag) = f.next_flag() {
        match flag.as_str() {
            "--graph" => graph_path = Some(f.value("--graph")),
            "--out" => out = Some(f.value("--out")),
            "--budget-cap" => budget_cap = f.parsed("--budget-cap"),
            "--eps" => params.eps = f.parsed("--eps"),
            "--ell" => params.ell = f.parsed("--ell"),
            "--seed" => params.seed = f.parsed("--seed"),
            "--threads" => params.threads = f.parsed("--threads"),
            "--max-rr-sets" => params.max_rr_sets = f.parsed("--max-rr-sets"),
            "--sharded" => sharded = true,
            // asking for a shard count is asking for a sharded store —
            // silently ignoring --shards would write a monolithic
            // snapshot after the user already paid for the build
            "--shards" => {
                shards = f.parsed("--shards");
                sharded = true;
            }
            "--condition" => conditions.push(
                f.value("--condition")
                    .split(',')
                    .map(|s| {
                        s.trim()
                            .parse()
                            .unwrap_or_else(|_| die("bad --condition node id"))
                    })
                    .collect(),
            ),
            other => die(&format!("unknown `index build` argument `{other}`")),
        }
    }
    let graph_path = graph_path.unwrap_or_else(|| die("--graph is required"));
    let out = out.unwrap_or_else(|| die("--out is required"));
    if budget_cap == 0 {
        die("--budget-cap must be positive");
    }
    if sharded && shards == 0 {
        die("--shards must be positive");
    }
    if sharded && !conditions.is_empty() {
        die("--condition persists views in snapshot format v2; sharded stores do not carry them yet");
    }
    let graph = load_graph(&graph_path);
    for sp in &conditions {
        if let Some(&v) = sp.iter().find(|&&v| v as usize >= graph.num_nodes()) {
            die(&format!(
                "--condition node {v} out of range for a {}-node graph",
                graph.num_nodes()
            ));
        }
    }
    eprintln!(
        "building index: {} nodes, {} edges, budget cap {budget_cap}, eps {}",
        graph.num_nodes(),
        graph.num_edges(),
        params.eps
    );
    let start = std::time::Instant::now();
    let index = RrIndex::build(&graph, budget_cap, &params);
    let build_time = start.elapsed();
    if sharded {
        let summary = write_store(&index, &out, shards)
            .unwrap_or_else(|e| die(&format!("cannot write store: {e}")));
        println!(
            "store built in {build_time:?}: θ = {} sampled, {} retained sets \
             across {} shard(s), {} bytes -> {out}/",
            index.num_sampled(),
            summary.total_sets,
            summary.shards,
            summary.bytes_on_disk
        );
    } else {
        engine::snapshot::save_with_views(&index, &conditions, &out)
            .unwrap_or_else(|e| die(&format!("cannot save index: {e}")));
        let size = std::fs::metadata(&out).map(|m| m.len()).unwrap_or(0);
        println!(
            "index built in {build_time:?}: θ = {} sampled, {} retained sets, \
             {} persisted view(s), {} bytes -> {out}",
            index.num_sampled(),
            index.num_sets(),
            conditions.len(),
            size
        );
    }
}

/// `cwelmax index topup …` — grow a journaled store's sampled population
/// to at least `--theta` RR sets, continuing the build's deterministic
/// sampling stream. The new sets are fsynced into `journal.bin` before
/// the command reports success; reopening the store (or a live server's
/// `{"v": 2, "type": "topup"}`) serves them immediately.
fn cmd_index_topup(argv: Vec<String>) {
    let mut store = None;
    let mut graph_path = None;
    let mut theta: Option<usize> = None;
    let mut f = Flags::new(argv);
    while let Some(flag) = f.next_flag() {
        match flag.as_str() {
            "--store" => store = Some(f.value("--store")),
            "--graph" => graph_path = Some(f.value("--graph")),
            "--theta" => theta = Some(f.parsed("--theta")),
            other => die(&format!("unknown `index topup` argument `{other}`")),
        }
    }
    let store = store.unwrap_or_else(|| die("--store is required"));
    let graph_path = graph_path.unwrap_or_else(|| die("--graph is required"));
    let theta = theta.unwrap_or_else(|| die("--theta is required"));
    let graph = load_graph(&graph_path);
    let js = cwelmax::store::JournaledStore::open(&store)
        .unwrap_or_else(|e| die(&format!("cannot open store: {e}")));
    let before = js.num_sampled();
    let start = std::time::Instant::now();
    let have = js
        .ensure_theta(&graph, theta)
        .unwrap_or_else(|e| die(&format!("top-up failed: {e}")));
    println!(
        "store topped up in {:?}: θ {before} -> {have} \
         ({} journal record(s), {} journal bytes) -> {store}/",
        start.elapsed(),
        js.journal_records(),
        js.journal_bytes()
    );
}

/// `cwelmax index compact …` — fold a journaled store's `journal.bin`
/// into fresh shard files and remove the journal. Also reshards when
/// `--shards` differs from the current layout.
fn cmd_index_compact(argv: Vec<String>) {
    let mut store = None;
    let mut shards: Option<usize> = None;
    let mut f = Flags::new(argv);
    while let Some(flag) = f.next_flag() {
        match flag.as_str() {
            "--store" => store = Some(f.value("--store")),
            "--shards" => shards = Some(f.parsed("--shards")),
            other => die(&format!("unknown `index compact` argument `{other}`")),
        }
    }
    let store = store.unwrap_or_else(|| die("--store is required"));
    if shards == Some(0) {
        die("--shards must be positive");
    }
    let js = cwelmax::store::JournaledStore::open(&store)
        .unwrap_or_else(|e| die(&format!("cannot open store: {e}")));
    let start = std::time::Instant::now();
    let summary = js
        .compact(shards)
        .unwrap_or_else(|e| die(&format!("compaction failed: {e}")));
    println!(
        "store compacted in {:?}: θ = {} sampled, {} retained sets across \
         {} shard(s), {} bytes, journal folded -> {store}/",
        start.elapsed(),
        js.num_sampled(),
        summary.total_sets,
        summary.shards,
        summary.bytes_on_disk
    );
}

/// Resolve `--index`/`--store` into the shared [`EngineSource`] (one
/// code path for every serving subcommand) or die with its message.
fn resolve_source(index: Option<String>, store: Option<String>) -> EngineSource {
    EngineSource::resolve(index, store).unwrap_or_else(|msg| die(msg))
}

/// Load graph + index into an engine (shared by `query-batch` and
/// `serve`): one `EngineBuilder` pipeline regardless of source, with the
/// subcommand's cache capacities applied at construction.
fn load_engine(
    graph_path: &str,
    source: &EngineSource,
    cache_cap: Option<usize>,
) -> CampaignEngine {
    let graph = Arc::new(load_graph(graph_path));
    eprintln!("loading engine from {}", source.describe());
    let mut builder = source.builder().graph(graph);
    if let Some(cap) = cache_cap {
        builder = builder.cache_capacity(cap);
    }
    builder
        .build()
        .unwrap_or_else(|e| die(&format!("cannot load engine: {e}")))
}

/// `cwelmax query-batch …` — answer many campaigns from a prebuilt index.
/// A malformed query yields a per-query error entry in the output; the
/// rest of the batch still runs.
fn cmd_query_batch(argv: Vec<String>) {
    let mut graph_path = None;
    let mut index_path = None;
    let mut store_path = None;
    let mut queries_path = None;
    let mut threads = 0usize;
    let mut json = false;
    let mut f = Flags::new(argv);
    while let Some(flag) = f.next_flag() {
        match flag.as_str() {
            "--graph" => graph_path = Some(f.value("--graph")),
            "--index" => index_path = Some(f.value("--index")),
            "--store" => store_path = Some(f.value("--store")),
            "--queries" => queries_path = Some(f.value("--queries")),
            "--threads" => threads = f.parsed("--threads"),
            "--json" => json = true,
            other => die(&format!("unknown `query-batch` argument `{other}`")),
        }
    }
    let graph_path = graph_path.unwrap_or_else(|| die("--graph is required"));
    let source = resolve_source(index_path, store_path);
    let queries_path = queries_path.unwrap_or_else(|| die("--queries is required"));

    let engine = load_engine(&graph_path, &source, None);
    let text = std::fs::read_to_string(&queries_path)
        .unwrap_or_else(|e| die(&format!("cannot read queries: {e}")));
    let root: serde_json::Value =
        serde_json::from_str(&text).unwrap_or_else(|e| die(&format!("bad queries JSON: {e}")));
    // parse every query up front; bad ones become per-slot errors instead
    // of killing the whole batch
    let parsed: Vec<Result<CampaignQuery, String>> = root
        .as_array()
        .unwrap_or_else(|| die("queries file must hold a JSON array"))
        .iter()
        .enumerate()
        .map(|(k, v)| wire::parse_query(v).map_err(|e| format!("query {k}: {e}")))
        .collect();
    let runnable: Vec<CampaignQuery> = parsed.iter().filter_map(|r| r.clone().ok()).collect();

    let start = std::time::Instant::now();
    let mut answers = engine.query_batch(&runnable, threads).into_iter();
    let elapsed = start.elapsed();
    let stats = engine.stats();
    // re-interleave answers with the parse errors, in query order
    let rows: Vec<Result<_, String>> = parsed
        .iter()
        .map(|r| match r {
            Ok(_) => answers
                .next()
                .expect("one answer per runnable query")
                .map_err(|e| e.to_string()),
            Err(e) => Err(e.clone()),
        })
        .collect();

    if json {
        let out = serde_json::json!({
            "answers": rows
                .iter()
                .map(|r| match r {
                    // the offline report keeps the v1 shape — it is a
                    // file, not a negotiated connection
                    Ok(a) => wire::answer_response(a, Protocol::V1),
                    Err(e) => wire::error_response(e),
                })
                .collect::<Vec<_>>(),
            "batch_seconds": elapsed.as_secs_f64(),
            "engine": wire::engine_stats_value(&stats),
        });
        println!(
            "{}",
            serde_json::to_string_pretty(&out).expect("serializable")
        );
    } else {
        for (k, r) in rows.iter().enumerate() {
            match r {
                Ok(a) => println!(
                    "query {k}: {} welfare {:.2} in {:?}  {:?}",
                    a.algorithm,
                    a.welfare,
                    a.elapsed,
                    a.allocation.pairs()
                ),
                Err(e) => println!("query {k}: error: {e}"),
            }
        }
        println!(
            "batch: {} queries in {elapsed:?} ({} pool selection(s), \
             {} welfare evals, {} cache hits)",
            rows.len(),
            stats.pool_selections,
            stats.welfare_evals,
            stats.welfare_cache_hits
        );
    }
}

/// `cwelmax serve …` — long-lived NDJSON-over-TCP query server over one
/// engine. Loads the graph and index once; answers until a
/// `{"type": "shutdown"}` request.
fn cmd_serve(argv: Vec<String>) {
    let mut graph_path = None;
    let mut index_path = None;
    let mut store_path = None;
    let mut addr = "127.0.0.1:7878".to_string();
    let mut cache_cap: Option<usize> = None;
    let mut max_conns: Option<usize> = None;
    let mut log_level = "warn".to_string();
    let mut slow_query_ms: Option<u64> = None;
    let mut metrics_dump_secs: Option<u64> = None;
    let mut metrics_file: Option<String> = None;
    let mut trace_sample: Option<f64> = None;
    let mut trace_buffer: Option<usize> = None;
    let mut f = Flags::new(argv);
    while let Some(flag) = f.next_flag() {
        match flag.as_str() {
            "--graph" => graph_path = Some(f.value("--graph")),
            "--index" => index_path = Some(f.value("--index")),
            "--store" => store_path = Some(f.value("--store")),
            "--addr" => addr = f.value("--addr"),
            "--cache-cap" => cache_cap = Some(f.parsed("--cache-cap")),
            "--max-conns" => max_conns = Some(f.parsed("--max-conns")),
            "--log-level" => log_level = f.value("--log-level"),
            "--slow-query-ms" => slow_query_ms = Some(f.parsed("--slow-query-ms")),
            "--metrics-dump" => metrics_dump_secs = Some(f.parsed("--metrics-dump")),
            "--metrics-file" => metrics_file = Some(f.value("--metrics-file")),
            "--trace-sample" => trace_sample = Some(f.parsed("--trace-sample")),
            "--trace-buffer" => trace_buffer = Some(f.parsed("--trace-buffer")),
            other => die(&format!("unknown `serve` argument `{other}`")),
        }
    }
    if let Some(rate) = trace_sample {
        if !(0.0..=1.0).contains(&rate) {
            die("--trace-sample must be in [0, 1]");
        }
    }
    let graph_path = graph_path.unwrap_or_else(|| die("--graph is required"));
    let source = resolve_source(index_path, store_path);
    let level: obs::Level = log_level
        .parse()
        .unwrap_or_else(|e: String| die(&format!("bad --log-level: {e}")));
    let logger = Arc::new(obs::Logger::new(level));
    if let Some(ms) = slow_query_ms {
        logger.set_slow_query_ns(ms.saturating_mul(1_000_000));
    }

    let engine = load_engine(&graph_path, &source, cache_cap);
    let mut server = CampaignServer::bind(Arc::new(engine), addr.as_str())
        .unwrap_or_else(|e| die(&format!("cannot bind {addr}: {e}")))
        .with_logger(Arc::clone(&logger));
    if let Some(n) = max_conns {
        server = server.with_max_conns(n);
    }
    if let Some(rate) = trace_sample {
        server = server.with_trace_sample(rate);
    }
    if let Some(cap) = trace_buffer {
        server = server.with_trace_buffer(cap);
    }
    // periodic registry snapshots, one NDJSON line each, until the
    // server stops (the dump thread is a daemon: detached on purpose)
    if let Some(secs) = metrics_dump_secs {
        let registry = server.metrics();
        let path = metrics_file.clone();
        let dump_log = Arc::clone(&logger);
        std::thread::spawn(move || {
            let period = std::time::Duration::from_secs(secs.max(1));
            loop {
                std::thread::sleep(period);
                dump_metrics_line(&registry, path.as_deref(), &dump_log);
            }
        });
    }
    // announce readiness on stdout so drivers (tests, CI) can wait for it
    println!("cwelmax-serve listening on {}", server.local_addr());
    use std::io::Write as _;
    std::io::stdout().flush().ok();
    server
        .run()
        .unwrap_or_else(|e| die(&format!("server failed: {e}")));
    eprintln!("cwelmax-serve: shut down");
}

/// Append one `{"ts_ms": …, "metrics": {…}}` NDJSON line to `path` (or
/// stderr when no `--metrics-file` is given), flushing after the line so
/// tail-readers see complete records. Failures never take the server
/// down — metrics are best-effort by design — but they are *counted*
/// (`server.metrics_dump_errors`, visible in the next successful dump
/// and over the wire) and warned about through the structured logger, so
/// a wedged metrics file is an observable condition rather than a
/// silently dead NDJSON stream.
fn dump_metrics_line(registry: &obs::MetricsRegistry, path: Option<&str>, log: &obs::Logger) {
    use std::io::Write as _;
    let ts_ms = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_millis() as u64)
        .unwrap_or(0);
    let mut m = serde::Map::new();
    m.insert("ts_ms".into(), serde::Serialize::to_value(&ts_ms));
    m.insert("metrics".into(), registry.snapshot().to_value());
    let mut line = serde_json::to_string(&serde::Value::Object(m)).unwrap();
    line.push('\n');
    let result = match path {
        Some(p) => std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(p)
            .and_then(|mut f| f.write_all(line.as_bytes()).and_then(|()| f.flush())),
        None => std::io::stderr()
            .write_all(line.as_bytes())
            .and_then(|()| std::io::stderr().flush()),
    };
    if let Err(e) = result {
        registry.counter("server.metrics_dump_errors").incr();
        log.warn(
            "metrics_dump_error",
            &[
                ("error", serde::Serialize::to_value(&e.to_string())),
                (
                    "path",
                    serde::Serialize::to_value(&path.unwrap_or("<stderr>").to_string()),
                ),
            ],
        );
    }
}

fn main() {
    // subcommand dispatch: `index build …` / `query-batch …` are the warm
    // serving paths; bare flags fall through to the classic one-shot solver
    let argv: Vec<String> = std::env::args().skip(1).collect();
    match argv.first().map(String::as_str) {
        Some("index") => {
            let rest = argv.get(2..).unwrap_or(&[]).to_vec();
            return match argv.get(1).map(String::as_str) {
                Some("build") => cmd_index_build(rest, false),
                Some("shard") => cmd_index_build(rest, true),
                Some("topup") => cmd_index_topup(rest),
                Some("compact") => cmd_index_compact(rest),
                _ => die(
                    "usage: cwelmax index build --graph EDGES --out INDEX.cwrx [--sharded] [...] \
                     | cwelmax index shard --graph EDGES --out STORE_DIR --shards N [...] \
                     | cwelmax index topup --store STORE_DIR --graph EDGES --theta N \
                     | cwelmax index compact --store STORE_DIR [--shards N]",
                ),
            };
        }
        Some("query-batch") => return cmd_query_batch(argv[1..].to_vec()),
        Some("serve") => return cmd_serve(argv[1..].to_vec()),
        _ => {}
    }
    let args = parse_args();
    if args.emit_example {
        // the paper's C1 configuration, ready to edit
        let model = configs::two_item_config(TwoItemConfig::C1);
        println!(
            "{}",
            serde_json::to_string_pretty(&model).expect("serializable")
        );
        return;
    }
    let graph_path = args
        .graph
        .as_deref()
        .unwrap_or_else(|| die("--graph is required"));
    let config_path = args
        .config
        .as_deref()
        .unwrap_or_else(|| die("--config is required"));
    if args.budgets.is_empty() {
        die("--budgets is required");
    }

    let graph = graph_io::read_edge_list_file(graph_path, ProbabilityModel::WeightedCascade)
        .unwrap_or_else(|e| die(&format!("cannot read graph: {e}")));
    let model: UtilityModel = serde_json::from_str(
        &std::fs::read_to_string(config_path)
            .unwrap_or_else(|e| die(&format!("cannot read config: {e}"))),
    )
    .unwrap_or_else(|e| die(&format!("bad model JSON: {e}")));
    if args.budgets.len() != model.num_items() {
        die(&format!(
            "budgets ({}) must match the model's item count ({})",
            args.budgets.len(),
            model.num_items()
        ));
    }
    let fixed = match &args.fixed {
        None => Allocation::new(),
        Some(path) => {
            let pairs: Vec<(u32, usize)> = serde_json::from_str(
                &std::fs::read_to_string(path)
                    .unwrap_or_else(|e| die(&format!("cannot read fixed allocation: {e}"))),
            )
            .unwrap_or_else(|e| die(&format!("bad fixed-allocation JSON: {e}")));
            Allocation::from_pairs(pairs)
        }
    };

    let problem = Problem::new(graph, model)
        .with_budgets(args.budgets.clone())
        .with_fixed_allocation(fixed)
        .with_sim(SimulationConfig {
            samples: args.samples,
            threads: 0,
            base_seed: args.seed,
        })
        .with_imm(ImmParams {
            eps: args.eps,
            ell: 1.0,
            seed: args.seed,
            threads: 0,
            max_rr_sets: 50_000_000,
        });

    let solution = match args.algorithm.as_str() {
        "seqgrd" => SeqGrd::new(SeqGrdMode::Marginal).solve(&problem),
        "seqgrd-nm" => SeqGrd::new(SeqGrdMode::NoMarginal).solve(&problem),
        "maxgrd" => MaxGrd.solve(&problem),
        "supgrd" => {
            if let Err(issues) = SupGrd::check_conditions(&problem) {
                eprintln!("warning: SupGRD conditions violated (bound forfeited):");
                for i in &issues {
                    eprintln!("  - {i}");
                }
            }
            SupGrd.solve(&problem)
        }
        "best-of" => best_of(&problem, SeqGrd::new(SeqGrdMode::Marginal)),
        "tcim" => Tcim.solve(&problem),
        "round-robin" => RoundRobin.solve(&problem),
        "snake" => Snake.solve(&problem),
        other => die(&format!("unknown algorithm `{other}`")),
    };

    let report = problem.evaluate_report(&solution.allocation);
    if args.json {
        let out = serde_json::json!({
            "algorithm": solution.algorithm,
            "allocation": solution.allocation.pairs(),
            "welfare": report.welfare,
            "adoption_counts": report.adoption_counts,
            "total_adopters": report.total_adopters,
            "solve_seconds": solution.elapsed.as_secs_f64(),
        });
        println!(
            "{}",
            serde_json::to_string_pretty(&out).expect("serializable")
        );
    } else {
        println!("algorithm: {}", solution.algorithm);
        println!("solve time: {:?}", solution.elapsed);
        println!("welfare (±MC noise): {:.2}", report.welfare);
        for (i, c) in report.adoption_counts.iter().enumerate() {
            println!(
                "  item {i}: {} seeds, {c:.1} expected adopters",
                solution.allocation.seeds_of(i).len()
            );
        }
        println!("allocation: {:?}", solution.allocation.pairs());
    }
}

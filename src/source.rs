//! [`EngineSource`] — the one place snapshot-vs-store resolution lives.
//!
//! Every serving entry point (`cwelmax serve`, `cwelmax query-batch`,
//! and whatever subcommand comes next) takes the same pair of mutually
//! exclusive flags: `--index SNAPSHOT` or `--store DIR`. Before this
//! module, each subcommand re-implemented the resolution and the
//! engine-loading dance; now they all call [`EngineSource::resolve`] and
//! get an [`EngineBuilder`] from [`EngineSource::builder`], so source
//! semantics (including error wording and lazy-store behavior) cannot
//! drift between subcommands.

use cwelmax_engine::{EngineBuilder, EngineError};
use cwelmax_graph::Graph;
use cwelmax_store::FromStore;
use std::path::PathBuf;
use std::sync::Arc;

/// Where a serving command gets its index from.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EngineSource {
    /// A monolithic snapshot file (`--index`), loaded whole; persisted
    /// conditioned views are pre-warmed.
    Snapshot(PathBuf),
    /// A sharded store directory (`--store`): manifest at build time,
    /// shards lazily as queries touch them. Opened **journaled**, so the
    /// engine can grow θ live (`{"v": 2, "type": "topup"}`); a store
    /// with no `journal.bin` behaves exactly as before.
    Store(PathBuf),
}

impl EngineSource {
    /// Resolve the mutually exclusive `--index` / `--store` flags.
    pub fn resolve(
        index: Option<String>,
        store: Option<String>,
    ) -> Result<EngineSource, &'static str> {
        match (index, store) {
            (Some(_), Some(_)) => Err("--index and --store are mutually exclusive"),
            (Some(p), None) => Ok(EngineSource::Snapshot(p.into())),
            (None, Some(d)) => Ok(EngineSource::Store(d.into())),
            (None, None) => Err("one of --index or --store is required"),
        }
    }

    /// An [`EngineBuilder`] over this source — callers chain their own
    /// graph, capacities, and pre-warm sets before `build()`.
    pub fn builder(&self) -> EngineBuilder {
        match self {
            EngineSource::Snapshot(path) => EngineBuilder::from_snapshot(path.clone()),
            EngineSource::Store(dir) => EngineBuilder::from_journaled_store(dir),
        }
    }

    /// Convenience: build an engine with default capacities.
    pub fn load(&self, graph: Arc<Graph>) -> Result<cwelmax_engine::CampaignEngine, EngineError> {
        self.builder().graph(graph).build()
    }

    /// Human-readable description for startup logs.
    pub fn describe(&self) -> String {
        match self {
            EngineSource::Snapshot(p) => format!("snapshot {}", p.display()),
            EngineSource::Store(d) => format!("store {} (lazy shards, journaled)", d.display()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn resolve_enforces_exactly_one_source() {
        assert_eq!(
            EngineSource::resolve(Some("a.cwrx".into()), None),
            Ok(EngineSource::Snapshot("a.cwrx".into()))
        );
        assert_eq!(
            EngineSource::resolve(None, Some("d.store".into())),
            Ok(EngineSource::Store("d.store".into()))
        );
        assert!(EngineSource::resolve(None, None).is_err());
        assert!(EngineSource::resolve(Some("a".into()), Some("b".into())).is_err());
    }

    #[test]
    fn builder_surfaces_missing_sources_as_engine_errors() {
        let graph = Arc::new(cwelmax_graph::generators::erdos_renyi(
            10,
            20,
            1,
            cwelmax_graph::ProbabilityModel::WeightedCascade,
        ));
        for source in [
            EngineSource::Snapshot("/nonexistent/x.cwrx".into()),
            EngineSource::Store("/nonexistent/x.store".into()),
        ] {
            match source.load(graph.clone()) {
                Err(EngineError::Io(_)) => {}
                other => panic!("{source:?}: expected Io, got {:?}", other.err()),
            }
        }
    }
}
